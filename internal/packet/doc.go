// Package packet implements ZipLine's Ethernet-based framing
// (paper §5): layer-2 frames carrying one of three payload kinds —
// raw chunks (type 1), processed-but-uncompressed basis+syndrome
// payloads (type 2), and compressed ID+syndrome payloads (type 3).
//
// The wire layouts come in two flavours. The aligned flavour models
// the Tofino artifact: every header field occupies whole bytes, which
// costs one extra pad byte in type 2 (the paper's measured 1.03×
// "no table" overhead, §7 "The 3% overhead is due to padding bits").
// The packed flavour bit-packs fields back to back, the ideal an
// "expert P4₁₆/TNA programmer" could approach.
package packet
