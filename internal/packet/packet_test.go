package packet

import (
	"bytes"
	"math/rand"
	"testing"

	"zipline/internal/bitvec"
	"zipline/internal/gd"
)

func TestMACString(t *testing.T) {
	m := MAC{0xDE, 0xAD, 0xBE, 0xEF, 0x00, 0x01}
	if got := m.String(); got != "de:ad:be:ef:00:01" {
		t.Fatalf("MAC string = %q", got)
	}
}

func TestHeaderRoundTrip(t *testing.T) {
	h := Header{
		Dst:       MAC{1, 2, 3, 4, 5, 6},
		Src:       MAC{7, 8, 9, 10, 11, 12},
		EtherType: EtherTypeCompressed,
	}
	payload := []byte{0xAA, 0xBB, 0xCC}
	frame := Frame(h, payload)
	if len(frame) != HeaderLen+3 {
		t.Fatalf("frame length %d", len(frame))
	}
	got, pl, err := ParseHeader(frame)
	if err != nil {
		t.Fatal(err)
	}
	if got != h {
		t.Fatalf("header = %+v, want %+v", got, h)
	}
	if !bytes.Equal(pl, payload) {
		t.Fatalf("payload = %x", pl)
	}
}

func TestParseHeaderShortFrame(t *testing.T) {
	if _, _, err := ParseHeader(make([]byte, 13)); err == nil {
		t.Fatal("short frame accepted")
	}
}

func TestTypeMapping(t *testing.T) {
	cases := []struct {
		et   uint16
		want Type
	}{
		{EtherTypeRaw, TypeRaw},
		{EtherTypeUncompressed, TypeUncompressed},
		{EtherTypeCompressed, TypeCompressed},
		{0x0800, TypeRaw}, // arbitrary traffic is type 1
	}
	for _, c := range cases {
		if got := TypeOf(c.et); got != c.want {
			t.Errorf("TypeOf(%#x) = %v, want %v", c.et, got, c.want)
		}
	}
	for _, typ := range []Type{TypeRaw, TypeUncompressed, TypeCompressed} {
		if typ != TypeRaw && TypeOf(EtherTypeFor(typ)) != typ {
			t.Errorf("EtherTypeFor round trip failed for %v", typ)
		}
	}
	if Type(9).String() != "type9/invalid" {
		t.Error("invalid type string")
	}
}

func paperFormat(t *testing.T, align bool) (Format, *gd.Codec) {
	t.Helper()
	tr, err := gd.NewHammingM(8)
	if err != nil {
		t.Fatal(err)
	}
	c := gd.NewCodec(tr)
	f, err := NewFormat(c, 15, align)
	if err != nil {
		t.Fatal(err)
	}
	return f, c
}

func TestPaperPayloadSizes(t *testing.T) {
	// The published operating point (m=8, t=15): 32 B chunks become
	// 33 B type 2 payloads (1.03× — the measured "no table" bar) and
	// 3 B type 3 payloads (0.094× — the "static table" bar).
	f, c := paperFormat(t, true)
	if c.ChunkBytes() != 32 {
		t.Fatalf("chunk = %d bytes", c.ChunkBytes())
	}
	if got := f.Type2Len(); got != 33 {
		t.Errorf("aligned Type2Len = %d, want 33", got)
	}
	if got := f.Type3Len(); got != 3 {
		t.Errorf("aligned Type3Len = %d, want 3", got)
	}
	// Packed flavour: no overhead at all for type 2.
	fp, _ := paperFormat(t, false)
	if got := fp.Type2Len(); got != 32 {
		t.Errorf("packed Type2Len = %d, want 32", got)
	}
	if got := fp.Type3Len(); got != 3 {
		t.Errorf("packed Type3Len = %d, want 3", got)
	}
}

func TestType2RoundTrip(t *testing.T) {
	for _, align := range []bool{true, false} {
		f, c := paperFormat(t, align)
		rng := rand.New(rand.NewSource(1))
		for trial := 0; trial < 50; trial++ {
			chunk := make([]byte, c.ChunkBytes())
			rng.Read(chunk)
			s, err := c.SplitChunk(chunk)
			if err != nil {
				t.Fatal(err)
			}
			tail := []byte{9, 9, 9}
			payload := f.AppendType2(nil, s)
			payload = append(payload, tail...)
			got, gotTail, err := f.ParseType2(payload)
			if err != nil {
				t.Fatalf("align=%v: %v", align, err)
			}
			if got.Deviation != s.Deviation || got.Extra != s.Extra || !got.Basis.Equal(s.Basis) {
				t.Fatalf("align=%v trial %d: split mismatch", align, trial)
			}
			if !bytes.Equal(gotTail, tail) {
				t.Fatalf("align=%v: tail = %x", align, gotTail)
			}
			// Full circle back to the chunk.
			out, err := c.MergeChunk(got, nil)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(out, chunk) {
				t.Fatalf("align=%v trial %d: chunk not reconstructed", align, trial)
			}
		}
	}
}

func TestType3RoundTrip(t *testing.T) {
	for _, align := range []bool{true, false} {
		f, _ := paperFormat(t, align)
		rng := rand.New(rand.NewSource(2))
		for trial := 0; trial < 50; trial++ {
			in := Compressed{
				Deviation: rng.Uint32() & 0xFF,
				Extra:     uint8(rng.Intn(2)),
				ID:        rng.Uint32() & 0x7FFF,
			}
			payload := f.AppendType3(nil, in)
			payload = append(payload, 1, 2)
			got, tail, err := f.ParseType3(payload)
			if err != nil {
				t.Fatal(err)
			}
			if got != in {
				t.Fatalf("align=%v trial %d: %+v != %+v", align, trial, got, in)
			}
			if !bytes.Equal(tail, []byte{1, 2}) {
				t.Fatalf("tail = %x", tail)
			}
		}
	}
}

func TestParseErrors(t *testing.T) {
	f, _ := paperFormat(t, true)
	if _, _, err := f.ParseType2(make([]byte, 10)); err == nil {
		t.Error("short type 2 accepted")
	}
	if _, _, err := f.ParseType3(make([]byte, 2)); err == nil {
		t.Error("short type 3 accepted")
	}
	// Aligned extra byte with out-of-range value.
	bad := make([]byte, f.Type2Len())
	bad[1] = 0x02 // extra field = 2, but only 1 bit is carried
	if _, _, err := f.ParseType2(bad); err == nil {
		t.Error("oversized extra accepted")
	}
}

func TestFormatValidation(t *testing.T) {
	tr, _ := gd.NewHammingM(8)
	c := gd.NewCodec(tr)
	if _, err := NewFormat(c, 0, true); err == nil {
		t.Error("idBits 0 accepted")
	}
	if _, err := NewFormat(c, 25, true); err == nil {
		t.Error("idBits 25 accepted")
	}
}

func TestSmallCodeFormats(t *testing.T) {
	// m=3: chunk 1 B, k=4 bits; everything fits in tiny payloads and
	// still round-trips in both flavours.
	tr, err := gd.NewHammingM(3)
	if err != nil {
		t.Fatal(err)
	}
	c := gd.NewCodec(tr)
	for _, align := range []bool{true, false} {
		f := MustFormat(c, 2, align)
		s, err := c.SplitChunk([]byte{0xC3})
		if err != nil {
			t.Fatal(err)
		}
		got, _, err := f.ParseType2(f.AppendType2(nil, s))
		if err != nil {
			t.Fatal(err)
		}
		out, err := c.MergeChunk(got, nil)
		if err != nil {
			t.Fatal(err)
		}
		if out[0] != 0xC3 {
			t.Fatalf("align=%v: round trip %02x", align, out[0])
		}
	}
}

var sinkBytes []byte

func BenchmarkAppendParseType2(b *testing.B) {
	tr, _ := gd.NewHammingM(8)
	c := gd.NewCodec(tr)
	f := MustFormat(c, 15, true)
	chunk := make([]byte, 32)
	rand.New(rand.NewSource(1)).Read(chunk)
	s, _ := c.SplitChunk(chunk)
	buf := make([]byte, 0, 64)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf = f.AppendType2(buf[:0], s)
		if _, _, err := f.ParseType2(buf); err != nil {
			b.Fatal(err)
		}
	}
	sinkBytes = buf
}

var _ = bitvec.New // cross-package doc reference
