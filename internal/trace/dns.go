package trace

import (
	"encoding/binary"
	"fmt"
	"math/rand"
	"strings"
)

// DNS wire-format constants (RFC 1035).
const (
	dnsHeaderLen = 12
	// QTypeA and QTypeAAAA are the query types the generator mixes.
	QTypeA    = 1
	QTypeAAAA = 28
	qClassIN  = 1
	// dnsFlagsRD is a standard recursive query's flag word.
	dnsFlagsRD = 0x0100
)

// QueryWireLen is the on-wire size the paper filters for: "queries of
// 34 B going to the main DNS resolver".
const QueryWireLen = 34

// StrippedQueryLen is QueryWireLen minus the 2-byte transaction
// identifier the paper excludes ("which is a random number") — the
// 256-bit chunk ZipLine actually sees.
const StrippedQueryLen = QueryWireLen - 2

// DNSConfig parameterises the campus-DNS workload. Zero values take
// the paper's scale.
type DNSConfig struct {
	// Queries is the total query count (default 735,000 ≈ the 25 MB
	// day of filtered traffic in Figure 3).
	Queries int
	// Domains is the catalogue of distinct queried names (default
	// 4,000 — one per campus user, in the spirit of [31]).
	Domains int
	// ZipfS is the popularity skew (default 1.30, in the band
	// measured for DNS name popularity; lookups are famously
	// Zipf-distributed).
	ZipfS float64
	// AAAAProb mixes IPv6 queries in (default 0.15).
	AAAAProb float64
	// Seed drives all randomness (default 2).
	Seed int64
}

// Paper-scale defaults for DNSConfig.
const (
	DefaultDNSQueries = 735_000
	DefaultDNSDomains = 4_000
	DefaultZipfS      = 1.30
	DefaultAAAAProb   = 0.15
)

func (c DNSConfig) withDefaults() DNSConfig {
	if c.Queries == 0 {
		c.Queries = DefaultDNSQueries
	}
	if c.Domains == 0 {
		c.Domains = DefaultDNSDomains
	}
	if c.ZipfS == 0 {
		c.ZipfS = DefaultZipfS
	}
	if c.AAAAProb == 0 {
		c.AAAAProb = DefaultAAAAProb
	}
	if c.Seed == 0 {
		c.Seed = 2
	}
	return c
}

// DNS generates the campus-DNS workload after the paper's filter:
// each record is a 32-byte query (transaction ID already stripped).
// All queries are 34 bytes on the wire before stripping, which pins
// the encoded QNAME to exactly 18 bytes; the generator builds names
// of the form www.<8 letters>.<3-letter TLD> to match.
func DNS(cfg DNSConfig) *Trace {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	names := dnsCatalogue(rng, cfg.Domains)
	zipf := rand.NewZipf(rng, cfg.ZipfS, 1, uint64(cfg.Domains-1))

	data := make([]byte, 0, cfg.Queries*StrippedQueryLen)
	for i := 0; i < cfg.Queries; i++ {
		name := names[zipf.Uint64()]
		qtype := uint16(QTypeA)
		if rng.Float64() < cfg.AAAAProb {
			qtype = QTypeAAAA
		}
		q := BuildQuery(uint16(rng.Intn(1<<16)), name, qtype)
		if len(q) != QueryWireLen {
			panic(fmt.Sprintf("trace: query for %q is %d bytes, want %d", name, len(q), QueryWireLen))
		}
		data = append(data, StripTxID(q)...)
	}
	return NewTrace("dns-campus", StrippedQueryLen, data)
}

// dnsCatalogue builds n distinct names whose encoded QNAME is exactly
// 18 bytes: www.xxxxxxxx.tld with an 8-letter middle label and a
// 3-letter TLD.
func dnsCatalogue(rng *rand.Rand, n int) []string {
	tlds := []string{"edu", "com", "org", "net"}
	const letters = "abcdefghijklmnopqrstuvwxyz"
	seen := make(map[string]bool, n)
	names := make([]string, 0, n)
	for len(names) < n {
		var sb strings.Builder
		sb.WriteString("www.")
		for i := 0; i < 8; i++ {
			sb.WriteByte(letters[rng.Intn(len(letters))])
		}
		sb.WriteByte('.')
		sb.WriteString(tlds[rng.Intn(len(tlds))])
		name := sb.String()
		if !seen[name] {
			seen[name] = true
			names = append(names, name)
		}
	}
	return names
}

// BuildQuery assembles a standard recursive DNS query (header +
// single question) in wire format.
func BuildQuery(txid uint16, name string, qtype uint16) []byte {
	out := make([]byte, dnsHeaderLen, dnsHeaderLen+len(name)+6)
	binary.BigEndian.PutUint16(out[0:], txid)
	binary.BigEndian.PutUint16(out[2:], dnsFlagsRD)
	binary.BigEndian.PutUint16(out[4:], 1) // QDCOUNT
	// ANCOUNT, NSCOUNT, ARCOUNT stay zero.
	out = AppendName(out, name)
	out = binary.BigEndian.AppendUint16(out, qtype)
	out = binary.BigEndian.AppendUint16(out, qClassIN)
	return out
}

// AppendName appends a domain name in DNS label encoding.
func AppendName(dst []byte, name string) []byte {
	for _, label := range strings.Split(strings.TrimSuffix(name, "."), ".") {
		if len(label) == 0 || len(label) > 63 {
			panic(fmt.Sprintf("trace: invalid DNS label %q in %q", label, name))
		}
		dst = append(dst, byte(len(label)))
		dst = append(dst, label...)
	}
	return append(dst, 0)
}

// ParseQueryName decodes the QNAME of a wire-format query (with or
// without its transaction ID, signalled by hasTxID) — a convenience
// for tests and examples.
func ParseQueryName(q []byte, hasTxID bool) (string, error) {
	off := dnsHeaderLen
	if !hasTxID {
		off -= 2
	}
	var labels []string
	for {
		if off >= len(q) {
			return "", fmt.Errorf("trace: truncated QNAME")
		}
		l := int(q[off])
		off++
		if l == 0 {
			break
		}
		if off+l > len(q) {
			return "", fmt.Errorf("trace: truncated label")
		}
		labels = append(labels, string(q[off:off+l]))
		off += l
	}
	return strings.Join(labels, "."), nil
}

// StripTxID removes the 2-byte transaction identifier, the paper's
// preprocessing step.
func StripTxID(query []byte) []byte {
	out := make([]byte, len(query)-2)
	copy(out, query[2:])
	return out
}
