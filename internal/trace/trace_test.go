package trace

import (
	"bytes"
	"testing"

	"zipline/internal/gd"
	"zipline/internal/packet"
	"zipline/internal/pcap"
)

func paperCodec(t *testing.T) *gd.Codec {
	t.Helper()
	tr, err := gd.NewHammingM(8)
	if err != nil {
		t.Fatal(err)
	}
	return gd.NewCodec(tr)
}

func TestSensorGeometryAndDeterminism(t *testing.T) {
	cfg := SensorConfig{Records: 10_000, Sensors: 20, Seed: 3}
	a := Sensor(cfg)
	b := Sensor(cfg)
	if a.RecordSize != 32 {
		t.Fatalf("record size = %d", a.RecordSize)
	}
	if a.Records() != 10_000 {
		t.Fatalf("records = %d", a.Records())
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("same seed produced different traces")
	}
	if !bytes.Equal(Sensor(SensorConfig{Records: 1000, Seed: 4}).Bytes()[:32],
		Sensor(SensorConfig{Records: 1000, Seed: 4}).Bytes()[:32]) {
		t.Fatal("determinism broken")
	}
}

func TestSensorValueRepetition(t *testing.T) {
	// The paper-scale parameters must keep the working set inside
	// the 32,768-base dictionary. Check the scaled-down equivalent:
	// distinct chunks ≈ sensors × (1 + records/sensors × changeProb),
	// far below record count.
	tr := Sensor(SensorConfig{Records: 200_000, Sensors: 200, Seed: 5})
	distinct := tr.DistinctChunks()
	if distinct >= 10_000 {
		t.Fatalf("distinct chunks = %d, want working-set ≪ records", distinct)
	}
	if distinct < 200 {
		t.Fatalf("distinct chunks = %d, suspiciously small", distinct)
	}
}

func TestSensorDistinctBasesEqualChunksWithoutSnap(t *testing.T) {
	c := paperCodec(t)
	tr := Sensor(SensorConfig{Records: 20_000, Sensors: 50, Seed: 6})
	bases, err := tr.DistinctBases(c)
	if err != nil {
		t.Fatal(err)
	}
	chunks := tr.DistinctChunks()
	// Quantised readings are arbitrary words: GD assigns one basis
	// per distinct value (no ball sharing without snapping).
	if bases != chunks {
		t.Fatalf("bases = %d, chunks = %d", bases, chunks)
	}
}

func TestSensorSnapAndGlitchShareBases(t *testing.T) {
	// With codeword snapping, glitched readings reuse the baseline's
	// basis: many more distinct chunks than bases — GD's clustering
	// advantage over exact deduplication.
	c := paperCodec(t)
	tr := Sensor(SensorConfig{
		Records: 50_000, Sensors: 50, Seed: 7,
		SnapCodec: c, GlitchProb: 0.2,
	})
	bases, err := tr.DistinctBases(c)
	if err != nil {
		t.Fatal(err)
	}
	chunks := tr.DistinctChunks()
	if chunks < bases*3 {
		t.Fatalf("chunks %d vs bases %d: glitches did not cluster", chunks, bases)
	}
	// Every snapped baseline is a codeword, so glitched chunks decode
	// back to themselves through the codec (lossless as always).
	for i := 0; i < 1000; i++ {
		rec := tr.Record(i)
		s, err := c.SplitChunk(rec)
		if err != nil {
			t.Fatal(err)
		}
		back, err := c.MergeChunk(s, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(back, rec) {
			t.Fatalf("record %d not lossless", i)
		}
	}
}

func TestDNSRecordShape(t *testing.T) {
	tr := DNS(DNSConfig{Queries: 5_000, Domains: 100, Seed: 8})
	if tr.RecordSize != StrippedQueryLen {
		t.Fatalf("record size = %d, want %d", tr.RecordSize, StrippedQueryLen)
	}
	if tr.Records() != 5_000 {
		t.Fatalf("records = %d", tr.Records())
	}
	// Each stripped record re-parses as a DNS question for a
	// catalogue-shaped name.
	for i := 0; i < 100; i++ {
		name, err := ParseQueryName(tr.Record(i), false)
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if len(name) != 16 { // www. + 8 + . + 3
			t.Fatalf("record %d: name %q has unexpected length", i, name)
		}
	}
}

func TestDNSPopularitySkew(t *testing.T) {
	tr := DNS(DNSConfig{Queries: 50_000, Domains: 1000, Seed: 9})
	counts := make(map[string]int)
	for i := 0; i < tr.Records(); i++ {
		counts[string(tr.Record(i))]++
	}
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	// Zipf head should dominate: the most popular (name,type) pair
	// appears far more often than uniform (uniform would be ≈50000 /
	// ~1300 distinct ≈ 38).
	if max < 500 {
		t.Fatalf("hottest record seen %d times; popularity not skewed", max)
	}
	// And the tail exists.
	if len(counts) < 300 {
		t.Fatalf("only %d distinct records", len(counts))
	}
}

func TestDNSWorkingSetFitsDictionary(t *testing.T) {
	c := paperCodec(t)
	tr := DNS(DNSConfig{Queries: 100_000, Seed: 10})
	bases, err := tr.DistinctBases(c)
	if err != nil {
		t.Fatal(err)
	}
	if bases >= 1<<15 {
		t.Fatalf("bases = %d, exceeds the 15-bit dictionary", bases)
	}
}

func TestBuildQueryWireFormat(t *testing.T) {
	q := BuildQuery(0xABCD, "www.example.com", QTypeA)
	// Header.
	if q[0] != 0xAB || q[1] != 0xCD {
		t.Fatal("txid misplaced")
	}
	if q[2] != 0x01 || q[3] != 0x00 {
		t.Fatal("flags != RD")
	}
	if q[5] != 1 {
		t.Fatal("QDCOUNT != 1")
	}
	name, err := ParseQueryName(q, true)
	if err != nil || name != "www.example.com" {
		t.Fatalf("name = %q err = %v", name, err)
	}
	// QTYPE/QCLASS trailer.
	if q[len(q)-4] != 0 || q[len(q)-3] != QTypeA || q[len(q)-1] != qClassIN {
		t.Fatalf("trailer = %x", q[len(q)-4:])
	}
	// 34-byte filter: www + 8 + 3 names hit it exactly.
	q2 := BuildQuery(1, "www.abcdefgh.edu", QTypeAAAA)
	if len(q2) != QueryWireLen {
		t.Fatalf("catalogue-shaped query = %d bytes", len(q2))
	}
	if got := len(StripTxID(q2)); got != StrippedQueryLen {
		t.Fatalf("stripped = %d bytes", got)
	}
}

func TestParseQueryNameErrors(t *testing.T) {
	if _, err := ParseQueryName([]byte{0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 5, 'a'}, false); err == nil {
		t.Fatal("truncated label accepted")
	}
	if _, err := ParseQueryName(make([]byte, 10), false); err == nil {
		t.Fatal("missing terminator accepted")
	}
}

func TestAppendNamePanicsOnBadLabel(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	AppendName(nil, "www..com")
}

func TestNewTracePanicsOnRaggedData(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewTrace("x", 32, make([]byte, 33))
}

func TestWritePcapRoundTrip(t *testing.T) {
	tr := Sensor(SensorConfig{Records: 50, Sensors: 5, Seed: 11})
	var buf bytes.Buffer
	w, err := pcap.NewWriter(&buf, 0)
	if err != nil {
		t.Fatal(err)
	}
	src := packet.MAC{2, 0, 0, 0, 0, 1}
	dst := packet.MAC{2, 0, 0, 0, 0, 2}
	if err := tr.WritePcap(w, src, dst, 1000); err != nil {
		t.Fatal(err)
	}
	r, err := pcap.NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < tr.Records(); i++ {
		ts, frame, err := r.Next()
		if err != nil {
			t.Fatalf("packet %d: %v", i, err)
		}
		if ts != int64(i)*1000 {
			t.Fatalf("packet %d: ts = %d", i, ts)
		}
		hdr, payload, err := packet.ParseHeader(frame)
		if err != nil {
			t.Fatal(err)
		}
		if hdr.EtherType != packet.EtherTypeRaw || hdr.Dst != dst {
			t.Fatalf("packet %d header = %+v", i, hdr)
		}
		if !bytes.Equal(payload, tr.Record(i)) {
			t.Fatalf("packet %d payload mismatch", i)
		}
	}
}
