// Package trace generates the paper's two evaluation workloads
// (§7 "Compression"):
//
//   - a synthetic dataset "engineered to be behaviorally close to
//     typical readouts from a sensor": 3,124,000 chunks of 256 bits
//     (≈100 MB), modelled as a fleet of sensors whose quantised
//     readings follow slow random walks;
//   - a real-world-shaped DNS dataset standing in for "a day of DNS
//     queries at a 4000 users university campus" [31]: 34-byte
//     wire-format queries to a single resolver, Zipf-popular names,
//     with the random transaction identifier stripped (as the paper's
//     filter does), leaving 32-byte chunks.
//
// Generators are deterministic given their seed.
package trace
