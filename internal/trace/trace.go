package trace

import (
	"encoding/binary"
	"fmt"
	"math/rand"

	"zipline/internal/gd"
	"zipline/internal/packet"
	"zipline/internal/pcap"
)

// Trace is a sequence of equally sized payload records, stored
// contiguously to keep multi-million-record datasets cheap.
type Trace struct {
	Name       string
	RecordSize int
	data       []byte
}

// NewTrace wraps pre-generated data; len(data) must be a multiple of
// recordSize.
func NewTrace(name string, recordSize int, data []byte) *Trace {
	if recordSize <= 0 || len(data)%recordSize != 0 {
		panic(fmt.Sprintf("trace: %d bytes is not a whole number of %d-byte records", len(data), recordSize))
	}
	return &Trace{Name: name, RecordSize: recordSize, data: data}
}

// Records returns the number of records.
func (t *Trace) Records() int { return len(t.data) / t.RecordSize }

// Record returns record i as a sub-slice (do not mutate).
func (t *Trace) Record(i int) []byte {
	off := i * t.RecordSize
	return t.data[off : off+t.RecordSize]
}

// Bytes returns the concatenated records (the "regular file" the
// paper feeds to gzip for the baseline bar).
func (t *Trace) Bytes() []byte { return t.data }

// TotalBytes returns the dataset's original size — the denominator of
// every Figure 3 ratio.
func (t *Trace) TotalBytes() int { return len(t.data) }

// WritePcap converts the trace to a pcap of Ethernet frames (one
// record per frame payload), the artifact the paper replays.
func (t *Trace) WritePcap(w *pcap.Writer, src, dst packet.MAC, nsPerPacket int64) error {
	hdr := packet.Header{Dst: dst, Src: src, EtherType: packet.EtherTypeRaw}
	for i := 0; i < t.Records(); i++ {
		frame := packet.Frame(hdr, t.Record(i))
		if err := w.WritePacket(int64(i)*nsPerPacket, frame); err != nil {
			return err
		}
	}
	return nil
}

// DistinctChunks counts distinct record values — the dictionary a
// classic deduplicator would need.
func (t *Trace) DistinctChunks() int {
	seen := make(map[string]struct{})
	for i := 0; i < t.Records(); i++ {
		seen[string(t.Record(i))] = struct{}{}
	}
	return len(seen)
}

// DistinctBases counts distinct GD bases under the codec — the
// dictionary ZipLine needs. The codec's chunk size must equal the
// record size.
func (t *Trace) DistinctBases(c *gd.Codec) (int, error) {
	if c.ChunkBytes() != t.RecordSize {
		return 0, fmt.Errorf("trace: record size %d != chunk size %d", t.RecordSize, c.ChunkBytes())
	}
	seen := make(map[string]struct{})
	for i := 0; i < t.Records(); i++ {
		s, err := c.SplitChunk(t.Record(i))
		if err != nil {
			return 0, err
		}
		seen[s.Basis.Key()] = struct{}{}
	}
	return len(seen), nil
}

// SensorConfig parameterises the synthetic dataset. Zero values take
// the paper's scale.
type SensorConfig struct {
	// Records is the total chunk count (default 3,124,000 — the
	// paper's figure).
	Records int
	// Sensors is the fleet size reporting round-robin (default 200).
	Sensors int
	// ChangeProb is the per-reading probability that one measured
	// field steps to a new quantised value (default 0.008, keeping
	// the whole day's bases inside the 32,768-entry dictionary).
	ChangeProb float64
	// GlitchProb corrupts a reading with transient bit-flip noise.
	// Only meaningful with SnapCodec, which keeps glitches inside
	// the code's correction ball; default 0.
	GlitchProb float64
	// GlitchBits is how many distinct bits each glitch flips
	// (default 1; use 2 with a T=2 SnapCodec for the BCH ablation).
	GlitchBits int
	// SnapCodec, when set, quantises every baseline reading to its
	// nearest GD codeword (syndrome zero) under the codec — the
	// GD-aware quantisation of the IoT literature the paper builds
	// on. Glitched variants then share the baseline's basis.
	SnapCodec *gd.Codec
	// NoiseBits, when positive, fills the record's trailing NoiseBits
	// bits (bytes 30–31: a raw ADC diagnostic sample) with fresh
	// randomness each record — the low-order measurement noise the
	// bit-swapping transform of [37] targets. At most 16.
	NoiseBits int
	// Seed drives all randomness (default 1).
	Seed int64
}

// Paper-scale defaults for SensorConfig.
const (
	DefaultSensorRecords = 3_124_000
	DefaultSensors       = 200
	DefaultChangeProb    = 0.008
)

func (c SensorConfig) withDefaults() SensorConfig {
	if c.Records == 0 {
		c.Records = DefaultSensorRecords
	}
	if c.Sensors == 0 {
		c.Sensors = DefaultSensors
	}
	if c.ChangeProb == 0 {
		c.ChangeProb = DefaultChangeProb
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.GlitchBits == 0 {
		c.GlitchBits = 1
	}
	return c
}

// sensorState is one device's current quantised reading.
type sensorState struct {
	temp     int32 // milli-degC
	humid    int32 // milli-%RH
	pressure int32 // Pa
	co2      int32 // ppm
	battery  uint16
	uuid     [8]byte
}

// Sensor generates the synthetic dataset: 32-byte records
// (sensor ID, status flags, four quantised measurements, battery,
// device UUID) from a round-robin fleet. Readings persist across many
// report intervals and step occasionally, so values repeat heavily —
// the property that gives both GD and gzip traction, as in the
// paper's Figure 3.
func Sensor(cfg SensorConfig) *Trace {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))

	states := make([]sensorState, cfg.Sensors)
	for i := range states {
		states[i] = sensorState{
			temp:     18_000 + int32(rng.Intn(80))*250, // 18–38 °C in 0.25 °C steps
			humid:    30_000 + int32(rng.Intn(160))*250,
			pressure: 98_000 + int32(rng.Intn(160))*25,
			co2:      400 + int32(rng.Intn(120))*10,
			battery:  3300,
		}
		rng.Read(states[i].uuid[:])
	}

	const recordSize = 32
	data := make([]byte, cfg.Records*recordSize)
	rec := make([]byte, recordSize)
	scratch := make([]byte, 0, recordSize)
	for i := 0; i < cfg.Records; i++ {
		id := i % cfg.Sensors
		st := &states[id]
		if rng.Float64() < cfg.ChangeProb {
			step := int32(1)
			if rng.Intn(2) == 0 {
				step = -1
			}
			switch rng.Intn(4) {
			case 0:
				st.temp += step * 250
			case 1:
				st.humid += step * 250
			case 2:
				st.pressure += step * 25
			case 3:
				st.co2 += step * 10
			}
		}
		binary.BigEndian.PutUint16(rec[0:], uint16(id))
		binary.BigEndian.PutUint16(rec[2:], 0x0001) // status flags
		binary.BigEndian.PutUint32(rec[4:], uint32(st.temp))
		binary.BigEndian.PutUint32(rec[8:], uint32(st.humid))
		binary.BigEndian.PutUint32(rec[12:], uint32(st.pressure))
		binary.BigEndian.PutUint32(rec[16:], uint32(st.co2))
		binary.BigEndian.PutUint16(rec[20:], st.battery)
		binary.BigEndian.PutUint16(rec[22:], 0) // reserved
		copy(rec[24:], st.uuid[:6])
		rec[30], rec[31] = 0, 0
		if cfg.NoiseBits > 0 {
			nb := cfg.NoiseBits
			if nb > 16 {
				nb = 16
			}
			adc := uint16(rng.Intn(1 << uint(nb)))
			binary.BigEndian.PutUint16(rec[30:], adc)
		}

		out := data[i*recordSize : (i+1)*recordSize]
		copy(out, rec)
		if cfg.SnapCodec != nil {
			snapToCodeword(cfg.SnapCodec, out, scratch)
			if cfg.GlitchProb > 0 && rng.Float64() < cfg.GlitchProb {
				// Transient bit-flip glitch. With snapped baselines
				// it stays inside the baseline's correction ball: a
				// new distinct chunk but not a new basis.
				flipped := map[int]bool{}
				for len(flipped) < cfg.GlitchBits {
					bit := rng.Intn(recordSize * 8)
					if !flipped[bit] {
						flipped[bit] = true
						out[bit>>3] ^= 1 << (7 - uint(bit&7))
					}
				}
			}
		}
	}
	return NewTrace("synthetic-sensor", recordSize, data)
}

// snapToCodeword forces a chunk's syndrome to zero by flipping at
// most one bit (GD-aware quantisation). scratch is a reusable buffer
// of at least the chunk's capacity.
func snapToCodeword(c *gd.Codec, chunk, scratch []byte) {
	s, err := c.SplitChunk(chunk)
	if err != nil {
		panic(err)
	}
	if s.Deviation == 0 {
		return
	}
	s.Deviation = 0
	merged, err := c.MergeChunk(s, scratch[:0])
	if err != nil {
		panic(err)
	}
	copy(chunk, merged)
}
