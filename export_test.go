package zipline

// SensorLikeData exposes the shared compressible-workload generator
// (parallel_test.go) to the external zipline_test package so the
// benchmarks exercise the same workload shape as the tests.
var SensorLikeData = sensorLikeData
