package zipline

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"sort"

	"zipline/internal/bitvec"
	"zipline/internal/gd"
)

// Dict is a pre-trained basis dictionary — the paper's warm-dictionary
// regime, where a fleet of compression points starts from shared
// learned state instead of learning every basis per stream. A Dict is
// immutable after construction and safe to share read-only across any
// number of concurrent Writers, Readers and EncodeAll/DecodeAll calls:
// its bases occupy the low identifiers [0, Len()) of every encoder and
// decoder that uses it, and the remaining identifier space keeps the
// usual per-stream LRU behaviour.
//
// Streams written with a Dict record its identity (ID and entry count)
// in the container header; a Reader must be handed the same Dict via
// WithDict or it rejects the stream with ErrDictRequired /
// ErrDictMismatch.
type Dict struct {
	cfg    Config // defaults applied
	frozen *gd.Frozen
	raw    []byte // serialized form
	id     uint32 // crc32(raw)
}

// Serialized dictionary format:
//
//	"ZLDT" | version u8 | m u8 | idBits u8 | t u8 | u32le count |
//	count × basis (ceil(BasisBits/8) bytes each, MSB-first packed)
const (
	dictMagic   = "ZLDT"
	dictVersion = 1
)

// TrainDict builds a dictionary from a sample corpus: the corpus is
// chunked at the configuration's chunk size, bases are counted, and
// the most frequent ones (ties broken by first appearance, so
// training is deterministic) are frozen — at most half the identifier
// space, leaving the rest for per-stream dynamic learning.
func TrainDict(corpus []byte, cfg Config) (*Dict, error) {
	cfg = cfg.withDefaults()
	codec, err := NewCodec(cfg)
	if err != nil {
		return nil, err
	}
	cs := codec.ChunkSize()
	if len(corpus) < cs {
		return nil, fmt.Errorf("zipline: training corpus of %d bytes is smaller than one %d-byte chunk", len(corpus), cs)
	}
	count := make(map[string]int)
	var order []string // first-appearance order
	var s Split
	for off := 0; off+cs <= len(corpus); off += cs {
		if err := codec.SplitInto(corpus[off:off+cs], &s); err != nil {
			return nil, err
		}
		key := string(s.Basis)
		if count[key] == 0 {
			order = append(order, key)
		}
		count[key]++
	}
	// Most frequent first; SliceStable keeps first-appearance order
	// within equal counts.
	sort.SliceStable(order, func(i, j int) bool { return count[order[i]] > count[order[j]] })
	maxBases := (1 << cfg.IDBits) / 2
	if maxBases < 1 {
		maxBases = 1
	}
	if len(order) > maxBases {
		order = order[:maxBases]
	}
	basisBytes := (codec.BasisBits() + 7) / 8
	raw := make([]byte, 0, 12+len(order)*basisBytes)
	raw = append(raw, dictMagic...)
	raw = append(raw, dictVersion, byte(cfg.M), byte(cfg.IDBits), byte(cfg.T))
	raw = binary.LittleEndian.AppendUint32(raw, uint32(len(order)))
	for _, key := range order {
		raw = append(raw, key...)
	}
	return newDict(cfg, codec, order, raw)
}

// LoadDict parses a dictionary serialized by Dict.Bytes.
func LoadDict(data []byte) (*Dict, error) {
	if len(data) < 12 || string(data[:4]) != dictMagic {
		return nil, fmt.Errorf("zipline: not a dictionary (bad magic)")
	}
	if data[4] != dictVersion {
		return nil, fmt.Errorf("zipline: unsupported dictionary version %d", data[4])
	}
	cfg := Config{M: int(data[5]), IDBits: int(data[6]), T: int(data[7])}
	codec, err := NewCodec(cfg)
	if err != nil {
		return nil, fmt.Errorf("zipline: dictionary header: %w", err)
	}
	cfg = codec.cfg
	n := int(binary.LittleEndian.Uint32(data[8:12]))
	if n < 1 || n >= 1<<cfg.IDBits {
		return nil, fmt.Errorf("zipline: dictionary of %d bases does not fit %d-bit identifiers", n, cfg.IDBits)
	}
	basisBytes := (codec.BasisBits() + 7) / 8
	if len(data) != 12+n*basisBytes {
		return nil, fmt.Errorf("zipline: dictionary is %d bytes, want %d for %d bases", len(data), 12+n*basisBytes, n)
	}
	bases := make([]string, n)
	for i := 0; i < n; i++ {
		bases[i] = string(data[12+i*basisBytes : 12+(i+1)*basisBytes])
	}
	return newDict(cfg, codec, bases, append([]byte(nil), data...))
}

// newDict assembles the shared frozen table and content identity.
func newDict(cfg Config, codec *Codec, bases []string, raw []byte) (*Dict, error) {
	vecs := make([]*bitvec.Vector, len(bases))
	for i, key := range bases {
		vecs[i] = bitvec.FromBytes([]byte(key), codec.BasisBits())
	}
	frozen := gd.NewFrozen(vecs)
	if frozen.Len() != len(bases) {
		return nil, fmt.Errorf("zipline: dictionary holds duplicate bases")
	}
	return &Dict{cfg: cfg, frozen: frozen, raw: raw, id: crc32.ChecksumIEEE(raw)}, nil
}

// Bytes returns the serialized dictionary, suitable for LoadDict on
// any peer that should decode this fleet's streams.
func (d *Dict) Bytes() []byte { return append([]byte(nil), d.raw...) }

// ID is the dictionary's content identity (CRC-32 of the serialized
// form) — the value streams record so readers can verify they hold
// the right dictionary.
func (d *Dict) ID() uint32 { return d.id }

// Len returns the number of pre-trained bases.
func (d *Dict) Len() int { return d.frozen.Len() }

// Config returns the GD configuration the dictionary was trained at
// (with defaults applied). Writers and Readers using the dict inherit
// it.
func (d *Dict) Config() Config { return d.cfg }
