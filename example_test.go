package zipline_test

import (
	"bytes"
	"fmt"

	"zipline"
)

// Splitting a chunk factors it into a reusable basis and a tiny
// deviation; merging is the exact inverse.
func ExampleCodec_Split() {
	codec := zipline.MustCodec(zipline.Config{}) // paper defaults
	chunk := bytes.Repeat([]byte{0xAB}, codec.ChunkSize())

	s, _ := codec.Split(chunk)
	back, _ := codec.Merge(s, nil)

	fmt.Println("basis bytes:", len(s.Basis))
	fmt.Println("deviation bits:", codec.DeviationBits())
	fmt.Println("lossless:", bytes.Equal(back, chunk))
	// Output:
	// basis bytes: 31
	// deviation bits: 8
	// lossless: true
}

// Repetitive data collapses to roughly 3 bytes per 32-byte chunk.
func ExampleCompressBytes() {
	data := bytes.Repeat([]byte("0123456789abcdef0123456789abcdef"), 1000)
	comp, _ := zipline.CompressBytes(data, zipline.Config{})
	back, _ := zipline.DecompressBytes(comp)

	fmt.Println("input:", len(data))
	fmt.Println("under 11%:", len(comp) < len(data)*11/100)
	fmt.Println("lossless:", bytes.Equal(back, data))
	// Output:
	// input: 32000
	// under 11%: true
	// lossless: true
}

// The full in-network system: after the control plane learns the one
// basis (≈1.8 ms), every packet crosses the link compressed.
func ExampleSimulateLink() {
	payload := bytes.Repeat([]byte{0x42}, 32)
	res, _ := zipline.SimulateLink(zipline.LinkSimConfig{
		Payloads: func(i int) []byte {
			if i >= 10_000 {
				return nil
			}
			return payload
		},
	})
	fmt.Println("bases learned:", res.BasesLearned)
	fmt.Println("compressed majority:", res.CompressedFrames > res.UncompressedFrames)
	fmt.Println("ratio below 0.2:", res.Ratio() < 0.2)
	// Output:
	// bases learned: 1
	// compressed majority: true
	// ratio below 0.2: true
}
