package zipline_test

import (
	"bytes"
	"fmt"

	"zipline"
)

// Splitting a chunk factors it into a reusable basis and a tiny
// deviation; merging is the exact inverse.
func ExampleCodec_Split() {
	codec := zipline.MustCodec(zipline.Config{}) // paper defaults
	chunk := bytes.Repeat([]byte{0xAB}, codec.ChunkSize())

	s, _ := codec.Split(chunk)
	back, _ := codec.Merge(s, nil)

	fmt.Println("basis bytes:", len(s.Basis))
	fmt.Println("deviation bits:", codec.DeviationBits())
	fmt.Println("lossless:", bytes.Equal(back, chunk))
	// Output:
	// basis bytes: 31
	// deviation bits: 8
	// lossless: true
}

// Repetitive data collapses to roughly 3 bytes per 32-byte chunk.
func ExampleCompressBytes() {
	data := bytes.Repeat([]byte("0123456789abcdef0123456789abcdef"), 1000)
	comp, _ := zipline.CompressBytes(data, zipline.Config{})
	back, _ := zipline.DecompressBytes(comp)

	fmt.Println("input:", len(data))
	fmt.Println("under 11%:", len(comp) < len(data)*11/100)
	fmt.Println("lossless:", bytes.Equal(back, data))
	// Output:
	// input: 32000
	// under 11%: true
	// lossless: true
}

// Pooled reuse: one Writer serves many short streams through Reset —
// with a warm shared dictionary the steady state allocates nothing.
func ExampleWriter_Reset() {
	reading := bytes.Repeat([]byte("temp=21.5C rh=40.2% ok padding!!"), 64)
	dict, _ := zipline.TrainDict(reading, zipline.Config{})
	zw, _ := zipline.NewWriter(nil, zipline.WithDict(dict))

	var streams [3]bytes.Buffer
	for i := range streams {
		zw.Reset(&streams[i]) // re-serve: dictionary back to its frozen prefix
		zw.Write(reading)
		zw.Close()
	}

	zr, _ := zipline.NewReader(nil, zipline.WithDict(dict))
	ok := true
	for i := range streams {
		back, err := zr.DecodeAll(streams[i].Bytes(), nil)
		ok = ok && err == nil && bytes.Equal(back, reading)
	}
	fmt.Println("streams served:", len(streams))
	fmt.Println("all lossless:", ok)
	fmt.Println("warm streams compressed:", streams[0].Len() < len(reading)/4)
	// Output:
	// streams served: 3
	// all lossless: true
	// warm streams compressed: true
}

// Shared-dict fan-out: a fleet of concurrent one-shot encoders serves
// short flows from one pre-trained dictionary — every goroutine hits
// the warm bases from its first chunk.
func ExampleWriter_EncodeAll() {
	flow := bytes.Repeat([]byte("sensor-7:pressure=1013.25hPa !!!"), 32)
	dict, _ := zipline.TrainDict(flow, zipline.Config{})
	enc, _ := zipline.NewWriter(nil, zipline.WithDict(dict)) // EncodeAll-only
	dec, _ := zipline.NewReader(nil, zipline.WithDict(dict))

	results := make(chan bool, 4)
	for g := 0; g < 4; g++ {
		go func() {
			comp := enc.EncodeAll(flow, nil) // concurrency-safe
			back, err := dec.DecodeAll(comp, nil)
			results <- err == nil && bytes.Equal(back, flow)
		}()
	}
	ok := true
	for g := 0; g < 4; g++ {
		ok = ok && <-results
	}
	fmt.Println("concurrent flows lossless:", ok)
	// Output:
	// concurrent flows lossless: true
}

// The full in-network system: after the control plane learns the one
// basis (≈1.8 ms), every packet crosses the link compressed.
func ExampleSimulateLink() {
	payload := bytes.Repeat([]byte{0x42}, 32)
	res, _ := zipline.SimulateLink(zipline.LinkSimConfig{
		Payloads: func(i int) []byte {
			if i >= 10_000 {
				return nil
			}
			return payload
		},
	})
	fmt.Println("bases learned:", res.BasesLearned)
	fmt.Println("compressed majority:", res.CompressedFrames > res.UncompressedFrames)
	fmt.Println("ratio below 0.2:", res.Ratio() < 0.2)
	// Output:
	// bases learned: 1
	// compressed majority: true
	// ratio below 0.2: true
}
