package zipline

import (
	"encoding/binary"
	"fmt"
	"io"
	"sync"

	"zipline/internal/bitvec"
)

// Parallel streaming engine (container versions 2 and 3).
//
// A Writer configured with WithWorkers(n > 1) splits its input into
// large fixed-size segments and fans them out to n workers,
// pgzip-style. Worker w owns basis dictionary shard w and encodes
// segments seq ≡ w (mod n) in order, so each shard's identifier
// assignment evolves deterministically; a collector goroutine emits
// the encoded groups strictly in segment order under the grouped
// framing (stream.go), which records the shard per group. A Reader
// configured with WithWorkers(n > 1) runs the mirror image: a pump
// goroutine reads groups in order and dispatches each to its shard's
// decode worker, and Read reassembles the decoded segments in stream
// order.
//
// Sharding trades a little compression for parallelism: each shard
// only learns from the segments it encodes, so cross-shard duplicate
// bases are stored once per shard — unless a shared pre-trained Dict
// (WithDict) puts the hot bases in every shard from the first chunk.
// With segments of 128 KiB the loss is small on the paper's
// workloads, and throughput scales with cores — the software analogue
// of ZipLine running one GD pipeline per switch port.

// defaultSegmentBytes is the input segment handed to each worker. It
// is a multiple of every valid chunk size (chunks are 2^(M-3) ≤ 4096
// bytes), large enough to amortise hand-off costs and small enough to
// keep per-shard dictionaries warm.
const defaultSegmentBytes = 128 << 10

// maxShards is the widest shard count the container header can record.
const maxShards = 255

// pwJob carries one input segment through an encode worker.
type pwJob struct {
	seq   uint32
	shard uint8
	data  []byte         // input segment (owned by the job until collected)
	block *bitvec.Writer // encoded records
	stats StreamStats
	err   error
	done  chan struct{}
}

// parEngine is the sharded encode engine behind a Writer with
// workers > 1. Its goroutines and channels are started lazily on the
// first dispatched segment and torn down by close/reset, so a pooled
// Writer holds no goroutines between streams; the segment and block
// pools persist across streams.
type parEngine struct {
	codec   *Codec
	dict    *Dict
	shards  int
	segSize int

	running       bool
	jobs          []chan *pwJob
	order         chan *pwJob
	collectorDone chan struct{}

	w     io.Writer    // destination, latched at start
	stats *StreamStats // -> Writer.Stats, latched at start

	pending []byte // partial input segment
	seq     uint32

	bufPool   sync.Pool // segment input buffers
	blockPool sync.Pool // *bitvec.Writer block buffers

	mu   sync.Mutex
	werr error // first encode/write error, set by the collector
}

func newParEngine(codec *Codec, set settings) *parEngine {
	cs := codec.ChunkSize()
	segSize := defaultSegmentBytes
	if rem := segSize % cs; rem != 0 {
		segSize += cs - rem
	}
	pe := &parEngine{codec: codec, dict: set.dict, shards: set.workers, segSize: segSize}
	pe.bufPool.New = func() any { return make([]byte, 0, segSize) }
	pe.blockPool.New = func() any { return bitvec.NewWriter(segSize/cs*4 + 256) }
	return pe
}

func (pe *parEngine) setErr(err error) {
	pe.mu.Lock()
	if pe.werr == nil {
		pe.werr = err
	}
	pe.mu.Unlock()
}

func (pe *parEngine) error() error {
	pe.mu.Lock()
	defer pe.mu.Unlock()
	return pe.werr
}

// start spins up the workers and collector for one stream.
func (pe *parEngine) start(zw *Writer) {
	if pe.running {
		return
	}
	pe.running = true
	pe.w, pe.stats = zw.w, &zw.Stats
	pe.jobs = make([]chan *pwJob, pe.shards)
	pe.order = make(chan *pwJob, 2*pe.shards)
	pe.collectorDone = make(chan struct{})
	for i := range pe.jobs {
		pe.jobs[i] = make(chan *pwJob, 2)
		go pe.worker(pe.jobs[i])
	}
	go pe.collect(pe.order, pe.collectorDone)
}

// shutdown closes the job channels and waits for the collector, so
// every goroutine has exited and every in-flight group is accounted
// for when it returns.
func (pe *parEngine) shutdown() {
	if !pe.running {
		return
	}
	pe.running = false
	for _, ch := range pe.jobs {
		close(ch)
	}
	close(pe.order)
	<-pe.collectorDone
	pe.jobs, pe.order, pe.collectorDone = nil, nil, nil
}

// reset returns the engine to its pre-stream state (Writer.Reset).
func (pe *parEngine) reset() {
	pe.shutdown()
	if pe.pending != nil {
		//ziplint:allow noalloc slice header boxed into sync.Pool only when Reset interrupts a partial segment — teardown, not steady state
		pe.bufPool.Put(pe.pending[:0])
		pe.pending = nil
	}
	pe.seq = 0
	pe.mu.Lock()
	pe.werr = nil
	pe.mu.Unlock()
}

// worker encodes one shard's segments in arrival order against the
// shard's persistent dictionary (seeded with the shared Dict when one
// is configured). The job channel is passed in because shutdown may
// clear the engine's channel slice before a freshly spawned worker
// gets scheduled.
func (pe *parEngine) worker(jobs <-chan *pwJob) {
	enc := newBlockEncoder(pe.codec, pe.dict)
	cs := pe.codec.ChunkSize()
	for job := range jobs {
		enc.block, enc.stats = job.block, &job.stats
		for off := 0; off < len(job.data) && job.err == nil; off += cs {
			job.err = enc.encodeChunk(job.data[off : off+cs])
		}
		close(job.done)
	}
}

// collect writes finished groups to the underlying writer in segment
// order. It keeps draining after a failure so dispatchers never block.
func (pe *parEngine) collect(order <-chan *pwJob, done chan<- struct{}) {
	defer close(done)
	failed := false
	for job := range order {
		<-job.done
		if !failed {
			err := job.err
			if err == nil {
				err = pe.writeGroup(job)
			}
			if err != nil {
				pe.setErr(err)
				failed = true
			} else {
				pe.stats.add(job.stats)
			}
		}
		job.block.Reset()
		pe.blockPool.Put(job.block)
		pe.bufPool.Put(job.data[:0])
	}
}

func (pe *parEngine) writeGroup(job *pwJob) error {
	var hdr [16]byte
	binary.LittleEndian.PutUint32(hdr[0:], uint32(len(job.block.Bytes())))
	binary.LittleEndian.PutUint32(hdr[4:], uint32(job.block.Len()))
	binary.LittleEndian.PutUint32(hdr[8:], job.seq)
	hdr[12] = job.shard
	if _, err := pe.w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := pe.w.Write(job.block.Bytes())
	return err
}

// dispatch hands a chunk-aligned segment to its shard's worker and
// registers it with the collector, starting the engine if needed.
func (pe *parEngine) dispatch(zw *Writer, seg []byte) {
	pe.start(zw)
	shard := int(pe.seq) % pe.shards
	job := &pwJob{
		seq:   pe.seq,
		shard: uint8(shard),
		data:  seg,
		block: pe.blockPool.Get().(*bitvec.Writer),
		done:  make(chan struct{}),
	}
	pe.seq++
	pe.order <- job
	pe.jobs[shard] <- job
}

// parWrite is Writer.Write for workers > 1.
func (zw *Writer) parWrite(p []byte) (int, error) {
	pe := zw.par
	if err := pe.error(); err != nil {
		return 0, err
	}
	if err := zw.writeHeader(); err != nil {
		return 0, err
	}
	n := len(p)
	for len(p) > 0 {
		if pe.pending == nil {
			pe.pending = pe.bufPool.Get().([]byte)
		}
		take := min(pe.segSize-len(pe.pending), len(p))
		pe.pending = append(pe.pending, p[:take]...)
		p = p[take:]
		if len(pe.pending) == pe.segSize {
			pe.dispatch(zw, pe.pending)
			pe.pending = nil
			// Re-check the latch per segment so a large Write stops
			// segmenting (and the workers stop encoding) as soon as
			// the collector records a failure, not at the next call.
			if err := pe.error(); err != nil {
				return n - len(p), err
			}
		}
	}
	return n, nil
}

// parClose is Writer.Close for workers > 1: it dispatches the final
// partial segment, waits for every worker, then writes the tail and
// trailer groups.
func (zw *Writer) parClose() error {
	pe := zw.par
	var tail []byte
	if len(pe.pending) > 0 {
		cs := zw.codec.ChunkSize()
		full := len(pe.pending) / cs * cs
		// The sub-chunk remainder must outlive the recycled buffer.
		tail = append([]byte(nil), pe.pending[full:]...)
		if full > 0 {
			pe.dispatch(zw, pe.pending[:full]) // collector recycles the buffer
		} else {
			pe.bufPool.Put(pe.pending[:0])
		}
		pe.pending = nil
	}
	pe.shutdown()
	if err := pe.error(); err != nil {
		return err
	}
	if err := zw.writeHeader(); err != nil { // empty stream: nothing dispatched
		return err
	}
	return zw.parFinish(tail)
}

// parFinish writes the tail group (if any) and the trailer.
func (zw *Writer) parFinish(tail []byte) error {
	if len(tail) > 0 {
		zw.Stats.TailBytes = uint64(len(tail))
		body := appendTailBlock(make([]byte, 0, 3+len(tail)), tail)
		hdr := zw.scratch[:16]
		for i := range hdr {
			hdr[i] = 0
		}
		binary.LittleEndian.PutUint32(hdr[0:], uint32(len(body)))
		binary.LittleEndian.PutUint32(hdr[4:], uint32(len(body)*8)|tailBlockFlag)
		binary.LittleEndian.PutUint32(hdr[8:], zw.par.seq)
		if _, err := zw.w.Write(hdr); err != nil {
			return err
		}
		if _, err := zw.w.Write(body); err != nil {
			return err
		}
	}
	return zw.writeTrailer()
}

// prJob carries one group through a decode worker.
type prJob struct {
	body   []byte
	bitLen int
	out    []byte
	err    error
	done   chan struct{}
}

// closedChan is a pre-closed done channel for jobs that need no work.
var closedChan = func() chan struct{} {
	ch := make(chan struct{})
	close(ch)
	return ch
}()

// parReader decodes a sharded stream with one worker per shard — the
// engine a Reader with workers > 1 starts once the header reveals a
// grouped multi-shard container.
type parReader struct {
	codec   *Codec
	dict    *Dict
	shards  int
	version uint8
	jobs    []chan *prJob
	order   chan *prJob
	stop    chan struct{}
	once    sync.Once

	shardStats []StreamStats
	pumpTail   uint64
	pumpErr    error // set by the pump before it closes order

	// Buffer recycling, mirroring the writer's pools: compressed group
	// bodies go back to bodyPool once decoded, decoded segments go
	// back to outPool once Read has drained them.
	bodyPool sync.Pool
	outPool  sync.Pool

	cur    []byte
	curBuf []byte // full backing of cur, recycled when drained
}

// newParReader starts the decode workers and the pump for the stream
// whose header zr has just parsed.
func newParReader(zr *Reader) *parReader {
	pr := &parReader{
		codec:      zr.codec,
		dict:       zr.streamDict,
		shards:     zr.shards,
		version:    zr.version,
		jobs:       make([]chan *prJob, zr.shards),
		order:      make(chan *prJob, 2*zr.shards),
		stop:       make(chan struct{}),
		shardStats: make([]StreamStats, zr.shards),
	}
	for i := range pr.jobs {
		pr.jobs[i] = make(chan *prJob, 2)
		go pr.worker(i)
	}
	go pr.pump(zr.r)
	return pr
}

// worker decodes this shard's groups in arrival order against the
// shard's persistent dictionary. The dictionary is built on the first
// group so a corrupt header's shard count cannot force up-front
// allocation of hundreds of full-capacity dictionaries.
func (pr *parReader) worker(shard int) {
	var dec *blockDecoder
	for job := range pr.jobs[shard] {
		if dec == nil {
			dec = newBlockDecoder(pr.codec, &pr.shardStats[shard], pr.dict)
		}
		var out []byte
		if b, _ := pr.outPool.Get().([]byte); b != nil {
			out = b[:0]
		}
		job.out, job.err = dec.decodeRecords(job.body, job.bitLen, out)
		// The compressed body is dead once decoded; every worker-bound
		// job's body came from bodyPool (tail jobs never reach here).
		pr.bodyPool.Put(job.body[:0])
		job.body = nil
		close(job.done)
	}
}

// pump reads groups in stream order, dispatching each to its shard's
// worker and to the in-order queue Read consumes from.
func (pr *parReader) pump(r io.Reader) {
	defer func() {
		for _, ch := range pr.jobs {
			close(ch)
		}
		close(pr.order)
	}()
	var nextSeq uint32
	var hdr [16]byte
	for {
		// Group flags are a v4 construct; v4 streams never reach this
		// engine (Reader.start routes them serially or via idxReader).
		byteLen, bitWord, shard, _, err := readBlockHeader(r, pr.version, &nextSeq, &hdr)
		if err != nil {
			pr.pumpErr = err
			return
		}
		if byteLen == 0 {
			return // trailer
		}
		tailGroup := bitWord&tailBlockFlag != 0
		var body []byte
		if !tailGroup {
			// Tail bodies are never pooled: the decoded tail aliases
			// them and lives until Read consumes it.
			if b, _ := pr.bodyPool.Get().([]byte); cap(b) >= int(byteLen) {
				body = b[:byteLen]
			}
		}
		if body == nil {
			body = make([]byte, byteLen)
		}
		if _, err := io.ReadFull(r, body); err != nil {
			pr.pumpErr = fmt.Errorf("%w: block body: %w", ErrCorrupt, truncErr(err))
			return
		}
		tail, isTail, err := classifyGroup(bitWord, shard, pr.shards, body)
		if err != nil {
			pr.pumpErr = err
			return
		}
		var job *prJob
		if isTail {
			pr.pumpTail += uint64(len(tail))
			job = &prJob{out: tail, done: closedChan}
		} else {
			job = &prJob{body: body, bitLen: int(bitWord), done: make(chan struct{})}
		}
		select {
		case pr.order <- job:
		case <-pr.stop:
			return
		}
		if job.body != nil {
			select {
			case pr.jobs[shard] <- job:
			case <-pr.stop:
				return
			}
		}
	}
}

// read is Reader.Read for the parallel decode path.
func (pr *parReader) read(zr *Reader, p []byte) (int, error) {
	for len(pr.cur) == 0 {
		if pr.curBuf != nil {
			pr.outPool.Put(pr.curBuf[:0])
			pr.curBuf = nil
		}
		job, ok := <-pr.order
		if !ok {
			if pr.pumpErr != nil {
				zr.err = pr.pumpErr
			} else {
				zr.err = io.EOF
				pr.finalizeStats(zr)
			}
			return 0, zr.err
		}
		<-job.done
		if job.err != nil {
			zr.err = job.err
			pr.release()
			return 0, zr.err
		}
		pr.cur, pr.curBuf = job.out, job.out
	}
	n := copy(p, pr.cur)
	pr.cur = pr.cur[n:]
	return n, nil
}

// finalizeStats folds the per-shard counters into the Reader's Stats
// once the whole stream has been consumed (every job's done channel
// has been observed, so the workers' writes are visible).
func (pr *parReader) finalizeStats(zr *Reader) {
	zr.Stats = StreamStats{TailBytes: pr.pumpTail}
	for _, s := range pr.shardStats {
		zr.Stats.add(s)
	}
}

// release unblocks the pump so its goroutine can exit early.
func (pr *parReader) release() {
	//ziplint:allow noalloc one-time closure under sync.Once at stream teardown
	pr.once.Do(func() { close(pr.stop) })
}

// segJob carries one checkpoint segment through an idxReader worker.
type segJob struct {
	seg   idxSegment
	stats StreamStats
	out   []byte
	err   error
	done  chan struct{}
}

// idxReader decodes an indexed single-shard (version-4) stream by
// fanning its checkpoint segments out to a worker pool — the segment
// scheduler that lets decode of a serially-written stream scale with
// cores. Each segment starts at a dictionary checkpoint, so a worker
// decodes it against a private dictionary reset to the frozen prefix,
// independent of every other segment; read stitches the decoded
// segments back together in stream order. A feeder goroutine meters
// segments through bounded channels, so a caller that stops reading
// stops the decoding (and its memory) too, exactly like parReader's
// pump.
type idxReader struct {
	order chan *segJob
	stop  chan struct{}
	once  sync.Once

	outPool sync.Pool // decoded segment buffers, recycled once drained

	cur    []byte
	curBuf []byte
}

// newIdxReader builds the segment scheduler for the stream whose
// header zr has just parsed, loading and validating the trailing
// index. It returns (nil, nil) when the fan-out does not apply — the
// source is not an io.ReaderAt, or the index has fewer than two
// segments — leaving the source repositioned for the serial path. A
// corrupt or truncated footer is an error.
func newIdxReader(zr *Reader) (*idxReader, error) {
	ra, ok := zr.r.(io.ReaderAt)
	if !ok || zr.seeker == nil {
		return nil, nil
	}
	cur, err := zr.seeker.Seek(0, io.SeekCurrent)
	if err != nil {
		return nil, nil
	}
	ix, err := readIndexFooter(zr.seeker, zr.origin)
	if err != nil {
		return nil, err
	}
	zr.idx = ix
	segs := ix.segments()
	if len(segs) < 2 {
		// One segment decodes as fast serially; rewind to the first
		// group for the streaming path.
		if _, err := zr.seeker.Seek(cur, io.SeekStart); err != nil {
			return nil, err
		}
		return nil, nil
	}
	workers := zr.set.workers
	if workers > len(segs) {
		workers = len(segs)
	}
	ir := &idxReader{
		order: make(chan *segJob, 2*workers),
		stop:  make(chan struct{}),
	}
	jobs := make(chan *segJob)
	for i := 0; i < workers; i++ {
		go ir.worker(jobs, zr.codec, zr.streamDict, zr.version, zr.shards, ra, zr.origin)
	}
	go func() {
		defer close(jobs)
		defer close(ir.order)
		for i := range segs {
			job := &segJob{seg: segs[i], done: make(chan struct{})}
			select {
			case ir.order <- job:
			case <-ir.stop:
				return
			}
			select {
			case jobs <- job:
			case <-ir.stop:
				return
			}
		}
	}()
	return ir, nil
}

// worker decodes segments as the feeder hands them out, reusing one
// decoder (dictionary reset per segment) and one body buffer.
func (ir *idxReader) worker(jobs <-chan *segJob, codec *Codec, dict *Dict, version uint8, shards int, ra io.ReaderAt, origin int64) {
	var dec *blockDecoder
	var body []byte
	for job := range jobs {
		if dec == nil {
			dec = newBlockDecoder(codec, &job.stats, dict)
		} else {
			dec.stats = &job.stats
			dec.dict.Reset()
		}
		var out []byte
		if b, _ := ir.outPool.Get().([]byte); b != nil {
			out = b[:0]
		}
		seg := job.seg
		sr := io.NewSectionReader(ra, origin+int64(seg.compStart), int64(seg.compEnd-seg.compStart))
		job.out, body, job.err = decodeSegment(sr, dec, version, shards, seg, body, out)
		close(job.done)
	}
}

// read is Reader.Read for the indexed fan-out path. Stats fold in
// segment by segment as each is consumed, so they are complete once
// io.EOF is returned.
func (ir *idxReader) read(zr *Reader, p []byte) (int, error) {
	for len(ir.cur) == 0 {
		if ir.curBuf != nil {
			ir.outPool.Put(ir.curBuf[:0])
			ir.curBuf = nil
		}
		job, ok := <-ir.order
		if !ok {
			zr.err = io.EOF
			return 0, zr.err
		}
		<-job.done
		if job.err != nil {
			zr.err = job.err
			ir.release()
			return 0, zr.err
		}
		zr.Stats.add(job.stats)
		ir.cur, ir.curBuf = job.out, job.out
	}
	n := copy(p, ir.cur)
	ir.cur = ir.cur[n:]
	return n, nil
}

// release unblocks the feeder so the pool can exit early.
func (ir *idxReader) release() {
	//ziplint:allow noalloc one-time closure under sync.Once at stream teardown
	ir.once.Do(func() { close(ir.stop) })
}

// ParallelWriter is the sharded writer type of the pre-options API.
//
// Deprecated: ParallelWriter is now an alias for Writer — construct
// with NewWriter(w, cfg, WithWorkers(n)).
type ParallelWriter = Writer

// NewParallelWriter builds a parallel compressing writer with the
// given configuration and worker count (0 selects GOMAXPROCS, capped
// at 255). As before, the container header is written immediately, so
// destination errors still surface at construction.
//
// Deprecated: use NewWriter(w, cfg, WithWorkers(workers)), which
// defers the header to the first Write/Close so the Writer can be
// pooled. Note that workers == 1 now selects the serial (version-1)
// container, which every Reader decodes.
func NewParallelWriter(w io.Writer, cfg Config, workers int) (*ParallelWriter, error) {
	if workers < 0 {
		workers = 0
	}
	zw, err := NewWriter(w, cfg, WithWorkers(workers))
	if err != nil {
		return nil, err
	}
	if err := zw.writeHeader(); err != nil {
		return nil, err
	}
	return zw, nil
}

// ParallelReader is the sharded reader type of the pre-options API.
//
// Deprecated: ParallelReader is now an alias for Reader — construct
// with NewReader(r, WithWorkers(n)).
type ParallelReader = Reader

// NewParallelReader opens a compressed stream with concurrent shard
// decoding, reading and validating its header immediately (unlike
// NewReader, which defers to the first Read).
//
// Deprecated: use NewReader(r, WithWorkers(0)).
func NewParallelReader(r io.Reader) (*ParallelReader, error) {
	zr, err := NewReader(r, WithWorkers(0))
	if err != nil {
		return nil, err
	}
	// The pre-options constructor surfaced header errors eagerly.
	if err := zr.start(); err != nil {
		return nil, err
	}
	return zr, nil
}

// CompressBytesParallel compresses data in one call using workers
// parallel encoders (0 selects GOMAXPROCS); the result is readable by
// any Reader configuration.
//
// Deprecated: use NewWriter with WithWorkers, or a pooled
// (*Writer).EncodeAll for short streams.
func CompressBytesParallel(data []byte, cfg Config, workers int) ([]byte, error) {
	var buf appendWriter
	pw, err := NewParallelWriter(&buf, cfg, workers)
	if err != nil {
		return nil, err
	}
	if _, err := pw.Write(data); err != nil {
		pw.Close() // release the workers; the write error wins
		return nil, err
	}
	if err := pw.Close(); err != nil {
		return nil, err
	}
	return buf.b, nil
}
