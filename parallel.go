package zipline

import (
	"encoding/binary"
	"fmt"
	"io"
	"runtime"
	"sync"

	"zipline/internal/bitvec"
)

// Parallel streaming engine (container version 2).
//
// ParallelWriter splits its input into large fixed-size segments and
// fans them out to N workers, pgzip-style. Worker w owns basis
// dictionary shard w and encodes segments seq ≡ w (mod N) in order, so
// each shard's identifier assignment evolves deterministically; a
// collector goroutine emits the encoded groups strictly in segment
// order under the v2 framing (stream.go), which records the shard per
// group. ParallelReader runs the mirror image: a pump goroutine reads
// groups in order and dispatches each to its shard's decode worker,
// and Read reassembles the decoded segments in stream order.
//
// Sharding trades a little compression for parallelism: each shard
// only learns from the segments it encodes, so cross-shard duplicate
// bases are stored once per shard. With segments of 128 KiB the loss
// is small on the paper's workloads, and throughput scales with
// cores — the software analogue of ZipLine running one GD pipeline
// per switch port.

// defaultSegmentBytes is the input segment handed to each worker. It
// is a multiple of every valid chunk size (chunks are 2^(M-3) ≤ 4096
// bytes), large enough to amortise hand-off costs and small enough to
// keep per-shard dictionaries warm.
const defaultSegmentBytes = 128 << 10

// maxShards is the widest shard count the v2 header can record.
const maxShards = 255

// pwJob carries one input segment through a ParallelWriter worker.
type pwJob struct {
	seq   uint32
	shard uint8
	data  []byte         // input segment (owned by the job until collected)
	block *bitvec.Writer // encoded records
	stats StreamStats
	err   error
	done  chan struct{}
}

// ParallelWriter compresses a byte stream with GD across multiple
// goroutines, emitting the version-2 sharded container. It implements
// io.WriteCloser; Close flushes the tail and trailer and must be
// called for the stream to be readable — including after a Write
// error, where it releases the worker and collector goroutines.
// Methods must not be called concurrently; Stats is valid after
// Close.
type ParallelWriter struct {
	w       io.Writer
	codec   *Codec
	shards  int
	segSize int

	pending []byte
	seq     uint32
	closed  bool

	jobs          []chan *pwJob
	order         chan *pwJob
	collectorDone chan struct{}

	bufPool   sync.Pool // segment input buffers
	blockPool sync.Pool // *bitvec.Writer block buffers

	mu   sync.Mutex
	werr error // first encode/write error, set by the collector

	// Stats accumulate over the writer's lifetime (valid after Close).
	Stats StreamStats
}

// NewParallelWriter builds a parallel compressing writer with the
// given configuration and worker count (0 selects GOMAXPROCS, capped
// at 255). The container header is written immediately. workers == 1
// still produces a valid v2 stream with a single shard.
func NewParallelWriter(w io.Writer, cfg Config, workers int) (*ParallelWriter, error) {
	codec, err := NewCodec(cfg)
	if err != nil {
		return nil, err
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > maxShards {
		workers = maxShards
	}
	cs := codec.ChunkSize()
	segSize := defaultSegmentBytes
	if rem := segSize % cs; rem != 0 {
		segSize += cs - rem
	}
	pw := &ParallelWriter{
		w:             w,
		codec:         codec,
		shards:        workers,
		segSize:       segSize,
		jobs:          make([]chan *pwJob, workers),
		order:         make(chan *pwJob, 2*workers),
		collectorDone: make(chan struct{}),
	}
	pw.bufPool.New = func() any { return make([]byte, 0, segSize) }
	pw.blockPool.New = func() any { return bitvec.NewWriter(segSize/cs*4 + 256) }

	hdr := append(streamHeader(streamV2, codec.cfg), byte(workers), 0, 0, 0)
	if _, err := w.Write(hdr); err != nil {
		return nil, err
	}
	for i := range pw.jobs {
		pw.jobs[i] = make(chan *pwJob, 2)
		go pw.worker(i)
	}
	go pw.collect()
	return pw, nil
}

func (pw *ParallelWriter) setErr(err error) {
	pw.mu.Lock()
	if pw.werr == nil {
		pw.werr = err
	}
	pw.mu.Unlock()
}

func (pw *ParallelWriter) error() error {
	pw.mu.Lock()
	defer pw.mu.Unlock()
	return pw.werr
}

// worker encodes this shard's segments in arrival order against the
// shard's persistent dictionary.
func (pw *ParallelWriter) worker(shard int) {
	enc := newBlockEncoder(pw.codec)
	cs := pw.codec.ChunkSize()
	for job := range pw.jobs[shard] {
		enc.block, enc.stats = job.block, &job.stats
		for off := 0; off < len(job.data) && job.err == nil; off += cs {
			job.err = enc.encodeChunk(job.data[off : off+cs])
		}
		close(job.done)
	}
}

// collect writes finished groups to the underlying writer in segment
// order. It keeps draining after a failure so dispatchers never block.
func (pw *ParallelWriter) collect() {
	defer close(pw.collectorDone)
	failed := false
	for job := range pw.order {
		<-job.done
		if !failed {
			err := job.err
			if err == nil {
				err = pw.writeGroup(job)
			}
			if err != nil {
				pw.setErr(err)
				failed = true
			} else {
				pw.Stats.add(job.stats)
			}
		}
		job.block.Reset()
		pw.blockPool.Put(job.block)
		pw.bufPool.Put(job.data[:0])
	}
}

func (pw *ParallelWriter) writeGroup(job *pwJob) error {
	var hdr [16]byte
	binary.LittleEndian.PutUint32(hdr[0:], uint32(len(job.block.Bytes())))
	binary.LittleEndian.PutUint32(hdr[4:], uint32(job.block.Len()))
	binary.LittleEndian.PutUint32(hdr[8:], job.seq)
	hdr[12] = job.shard
	if _, err := pw.w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := pw.w.Write(job.block.Bytes())
	return err
}

// dispatch hands a chunk-aligned segment to its shard's worker and
// registers it with the collector.
func (pw *ParallelWriter) dispatch(seg []byte) {
	shard := int(pw.seq) % pw.shards
	job := &pwJob{
		seq:   pw.seq,
		shard: uint8(shard),
		data:  seg,
		block: pw.blockPool.Get().(*bitvec.Writer),
		done:  make(chan struct{}),
	}
	pw.seq++
	pw.order <- job
	pw.jobs[shard] <- job
}

// Write implements io.Writer.
func (pw *ParallelWriter) Write(p []byte) (int, error) {
	if pw.closed {
		return 0, fmt.Errorf("zipline: write after Close")
	}
	if err := pw.error(); err != nil {
		return 0, err
	}
	n := len(p)
	for len(p) > 0 {
		if pw.pending == nil {
			pw.pending = pw.bufPool.Get().([]byte)
		}
		take := min(pw.segSize-len(pw.pending), len(p))
		pw.pending = append(pw.pending, p[:take]...)
		p = p[take:]
		if len(pw.pending) == pw.segSize {
			pw.dispatch(pw.pending)
			pw.pending = nil
			// Re-check the latch per segment so a large Write stops
			// segmenting (and the workers stop encoding) as soon as
			// the collector records a failure, not at the next call.
			if err := pw.error(); err != nil {
				return n - len(p), err
			}
		}
	}
	return n, nil
}

// Close dispatches the final partial segment, waits for every worker,
// then writes the tail and trailer groups. It does not close the
// underlying writer.
func (pw *ParallelWriter) Close() error {
	if pw.closed {
		return pw.error()
	}
	pw.closed = true
	var tail []byte
	if len(pw.pending) > 0 {
		cs := pw.codec.ChunkSize()
		full := len(pw.pending) / cs * cs
		// The sub-chunk remainder must outlive the recycled buffer.
		tail = append([]byte(nil), pw.pending[full:]...)
		if full > 0 {
			pw.dispatch(pw.pending[:full])
		}
		pw.pending = nil
	}
	for _, ch := range pw.jobs {
		close(ch)
	}
	close(pw.order)
	<-pw.collectorDone
	if err := pw.error(); err != nil {
		return err
	}
	// Record tail/trailer write failures too, so a later Close (e.g. a
	// deferred one after an unchecked explicit Close) repeats the
	// error instead of reporting success on a truncated stream.
	if err := pw.finish(tail); err != nil {
		pw.setErr(err)
		return err
	}
	return nil
}

// finish writes the tail group (if any) and the trailer.
func (pw *ParallelWriter) finish(tail []byte) error {
	if len(tail) > 0 {
		pw.Stats.TailBytes = uint64(len(tail))
		body := appendTailBlock(make([]byte, 0, 3+len(tail)), tail)
		var hdr [16]byte
		binary.LittleEndian.PutUint32(hdr[0:], uint32(len(body)))
		binary.LittleEndian.PutUint32(hdr[4:], uint32(len(body)*8)|tailBlockFlag)
		binary.LittleEndian.PutUint32(hdr[8:], pw.seq)
		if _, err := pw.w.Write(hdr[:]); err != nil {
			return err
		}
		if _, err := pw.w.Write(body); err != nil {
			return err
		}
	}
	var trailer [16]byte
	_, err := pw.w.Write(trailer[:])
	return err
}

// prJob carries one group through a ParallelReader worker.
type prJob struct {
	body   []byte
	bitLen int
	out    []byte
	err    error
	done   chan struct{}
}

// closedChan is a pre-closed done channel for jobs that need no work.
var closedChan = func() chan struct{} {
	ch := make(chan struct{})
	close(ch)
	return ch
}()

// ParallelReader decompresses a stream with one decode worker per
// shard. Version-1 (serial) streams are handled transparently by an
// embedded serial Reader. Methods must not be called concurrently;
// Stats is valid once Read has returned io.EOF.
type ParallelReader struct {
	serial *Reader // non-nil for v1 streams

	codec  *Codec
	shards int
	jobs   []chan *prJob
	order  chan *prJob
	stop   chan struct{}
	once   sync.Once

	shardStats []StreamStats
	pumpTail   uint64
	pumpErr    error // set by the pump before it closes order

	// Buffer recycling, mirroring the writer's pools: compressed group
	// bodies go back to bodyPool once decoded, decoded segments go
	// back to outPool once Read has drained them.
	bodyPool sync.Pool
	outPool  sync.Pool

	cur    []byte
	curBuf []byte // full backing of cur, recycled when drained
	err    error

	// Stats accumulate over the reader's lifetime.
	Stats StreamStats
}

// NewParallelReader opens a compressed stream, reading and validating
// its header immediately (unlike NewReader, which defers to the first
// Read).
func NewParallelReader(r io.Reader) (*ParallelReader, error) {
	version, codec, shards, err := parseStreamHeader(r)
	if err != nil {
		return nil, err
	}
	if version == streamV1 {
		// Serial container: delegate to a Reader that starts past the
		// already-parsed header.
		zr := &Reader{
			r:       r,
			codec:   codec,
			version: version,
			started: true,
			decs:    make([]*blockDecoder, shards),
		}
		return &ParallelReader{serial: zr}, nil
	}
	pr := &ParallelReader{
		codec:      codec,
		shards:     shards,
		jobs:       make([]chan *prJob, shards),
		order:      make(chan *prJob, 2*shards),
		stop:       make(chan struct{}),
		shardStats: make([]StreamStats, shards),
	}
	for i := range pr.jobs {
		pr.jobs[i] = make(chan *prJob, 2)
		go pr.worker(i)
	}
	go pr.pump(r)
	return pr, nil
}

// worker decodes this shard's groups in arrival order against the
// shard's persistent dictionary. The dictionary is built on the first
// group so a corrupt header's shard count cannot force up-front
// allocation of hundreds of full-capacity dictionaries.
func (pr *ParallelReader) worker(shard int) {
	var dec *blockDecoder
	for job := range pr.jobs[shard] {
		if dec == nil {
			dec = newBlockDecoder(pr.codec, &pr.shardStats[shard])
		}
		var out []byte
		if b, _ := pr.outPool.Get().([]byte); b != nil {
			out = b[:0]
		}
		job.out, job.err = dec.decodeRecords(job.body, job.bitLen, out)
		// The compressed body is dead once decoded; every worker-bound
		// job's body came from bodyPool (tail jobs never reach here).
		pr.bodyPool.Put(job.body[:0])
		job.body = nil
		close(job.done)
	}
}

// pump reads groups in stream order, dispatching each to its shard's
// worker and to the in-order queue Read consumes from.
func (pr *ParallelReader) pump(r io.Reader) {
	defer func() {
		for _, ch := range pr.jobs {
			close(ch)
		}
		close(pr.order)
	}()
	var nextSeq uint32
	for {
		byteLen, bitWord, shard, err := readBlockHeader(r, streamV2, &nextSeq)
		if err != nil {
			pr.pumpErr = err
			return
		}
		if byteLen == 0 {
			return // trailer
		}
		tailGroup := bitWord&tailBlockFlag != 0
		var body []byte
		if !tailGroup {
			// Tail bodies are never pooled: the decoded tail aliases
			// them and lives until Read consumes it.
			if b, _ := pr.bodyPool.Get().([]byte); cap(b) >= int(byteLen) {
				body = b[:byteLen]
			}
		}
		if body == nil {
			body = make([]byte, byteLen)
		}
		if _, err := io.ReadFull(r, body); err != nil {
			pr.pumpErr = fmt.Errorf("%w: block body: %v", ErrCorrupt, err)
			return
		}
		tail, isTail, err := classifyGroup(bitWord, shard, pr.shards, body)
		if err != nil {
			pr.pumpErr = err
			return
		}
		var job *prJob
		if isTail {
			pr.pumpTail += uint64(len(tail))
			job = &prJob{out: tail, done: closedChan}
		} else {
			job = &prJob{body: body, bitLen: int(bitWord), done: make(chan struct{})}
		}
		select {
		case pr.order <- job:
		case <-pr.stop:
			return
		}
		if job.body != nil {
			select {
			case pr.jobs[shard] <- job:
			case <-pr.stop:
				return
			}
		}
	}
}

// Read implements io.Reader.
func (pr *ParallelReader) Read(p []byte) (int, error) {
	if pr.serial != nil {
		n, err := pr.serial.Read(p)
		pr.Stats = pr.serial.Stats
		return n, err
	}
	if pr.err != nil {
		return 0, pr.err
	}
	for len(pr.cur) == 0 {
		if pr.curBuf != nil {
			pr.outPool.Put(pr.curBuf[:0])
			pr.curBuf = nil
		}
		job, ok := <-pr.order
		if !ok {
			if pr.pumpErr != nil {
				pr.err = pr.pumpErr
			} else {
				pr.err = io.EOF
				pr.finalizeStats()
			}
			return 0, pr.err
		}
		<-job.done
		if job.err != nil {
			pr.err = job.err
			pr.release()
			return 0, pr.err
		}
		pr.cur, pr.curBuf = job.out, job.out
	}
	n := copy(p, pr.cur)
	pr.cur = pr.cur[n:]
	return n, nil
}

// finalizeStats folds the per-shard counters into Stats once the
// whole stream has been consumed (every job's done channel has been
// observed, so the workers' writes are visible).
func (pr *ParallelReader) finalizeStats() {
	pr.Stats = StreamStats{TailBytes: pr.pumpTail}
	for _, s := range pr.shardStats {
		pr.Stats.add(s)
	}
}

// release unblocks the pump so its goroutine can exit early.
func (pr *ParallelReader) release() {
	pr.once.Do(func() { close(pr.stop) })
}

// Close releases the reader's goroutines without consuming the rest
// of the stream. It never fails; the error return satisfies
// io.ReadCloser.
func (pr *ParallelReader) Close() error {
	if pr.serial != nil {
		return nil
	}
	pr.release()
	if pr.err == nil {
		pr.err = fmt.Errorf("zipline: reader closed")
	}
	return nil
}

// CompressBytesParallel compresses data in one call using workers
// parallel encoders (0 selects GOMAXPROCS); the result is a v2
// sharded stream readable by Reader, ParallelReader or
// DecompressBytes.
func CompressBytesParallel(data []byte, cfg Config, workers int) ([]byte, error) {
	var buf appendWriter
	pw, err := NewParallelWriter(&buf, cfg, workers)
	if err != nil {
		return nil, err
	}
	if _, err := pw.Write(data); err != nil {
		pw.Close() // release the workers; the write error wins
		return nil, err
	}
	if err := pw.Close(); err != nil {
		return nil, err
	}
	return buf.b, nil
}
