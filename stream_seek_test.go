package zipline

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"runtime"
	"testing"
	"time"
)

// indexedStream compresses data under WithIndex with the given
// checkpoint interval (0 = default) and optional dict.
func indexedStream(t testing.TB, data []byte, every int, dict *Dict) []byte {
	t.Helper()
	var buf bytes.Buffer
	opts := []Option{WithIndex(every)}
	if dict != nil {
		opts = append(opts, WithDict(dict))
	}
	zw, err := NewWriter(&buf, opts...)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := zw.Write(data); err != nil {
		t.Fatal(err)
	}
	if err := zw.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestIndexedRoundTripSerial(t *testing.T) {
	for _, size := range []int{0, 1, 31, 32, 1000, 16 << 10, 64 << 10, 64<<10 + 17} {
		data := sensorLike(t, size, int64(size))
		comp := indexedStream(t, data, 0, nil)
		// A stream-oriented reader (workers == 1) must decode the v4
		// container without ever touching the footer — including the
		// in-band checkpoint resets.
		back, err := DecompressBytes(comp)
		if err != nil {
			t.Fatalf("size=%d: %v", size, err)
		}
		if !bytes.Equal(back, data) {
			t.Fatalf("size=%d: serial round trip of indexed stream failed", size)
		}
	}
}

func TestIndexedRoundTripWithDict(t *testing.T) {
	corpus := sensorLike(t, 1<<14, 9)
	dict, err := TrainDict(corpus, Config{})
	if err != nil {
		t.Fatal(err)
	}
	data := sensorLike(t, 48<<10, 10)
	comp := indexedStream(t, data, 8<<10, dict)
	for _, workers := range []int{1, 4} {
		zr, err := NewReader(bytes.NewReader(comp), WithDict(dict), WithWorkers(workers))
		if err != nil {
			t.Fatal(err)
		}
		back, err := io.ReadAll(zr)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !bytes.Equal(back, data) {
			t.Fatalf("workers=%d: dict-indexed round trip failed", workers)
		}
	}
}

func TestWithIndexRejectsParallelWriter(t *testing.T) {
	if _, err := NewWriter(io.Discard, WithIndex(0), WithWorkers(4)); err == nil {
		t.Fatal("WithIndex with a parallel writer must fail")
	}
	if _, err := NewWriter(io.Discard, WithIndex(-1)); err == nil {
		t.Fatal("negative checkpoint interval must fail")
	}
}

func TestIndexedFooterLayout(t *testing.T) {
	data := sensorLike(t, 64<<10, 3)
	comp := indexedStream(t, data, 0, nil)
	ix, err := parseTrailingFooter(comp)
	if err != nil {
		t.Fatal(err)
	}
	if ix.uncompTotal != uint64(len(data)) {
		t.Fatalf("uncompTotal = %d, want %d", ix.uncompTotal, len(data))
	}
	// 64 KiB at the default 16 KiB interval must yield 4 checkpoint
	// segments — the fan-out the acceptance criteria lean on.
	if got := len(ix.segments()); got != 4 {
		t.Fatalf("segments = %d, want 4", got)
	}
	if ix.watermark != 0 {
		t.Fatalf("watermark = %d for dictless stream", ix.watermark)
	}
	// The footer self-describes its length and sits right after the
	// 16-byte trailer group.
	fl := int(binary.LittleEndian.Uint32(comp[len(comp)-8:]))
	if ix.trailerOff+16 != uint64(len(comp)-fl) {
		t.Fatalf("trailerOff %d + trailer ≠ footer start %d", ix.trailerOff, len(comp)-fl)
	}
	// The header promised an index, so a footer-stripped container is
	// a truncated container — it must not decode cleanly.
	if _, err := DecompressBytes(comp[:len(comp)-fl]); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("footer-stripped stream: err = %v, want ErrCorrupt", err)
	}
}

func TestReaderSeekRoundTrip(t *testing.T) {
	data := sensorLike(t, 96<<10+13, 4)
	comp := indexedStream(t, data, 0, nil)
	zr, err := NewReader(bytes.NewReader(comp))
	if err != nil {
		t.Fatal(err)
	}
	offsets := []int64{0, 1, 31, 32, 16 << 10, 16<<10 + 1, 40_000, int64(len(data)) - 1, int64(len(data))}
	// Deliberately out of order: every seek must land exactly.
	for _, pass := range []int{2, 0, 4, 1, 8, 3, 7, 5, 6} {
		off := offsets[pass%len(offsets)]
		got, err := zr.Seek(off, io.SeekStart)
		if err != nil {
			t.Fatalf("Seek(%d): %v", off, err)
		}
		if got != off {
			t.Fatalf("Seek(%d) = %d", off, got)
		}
		want := data[off:]
		if len(want) > 100 {
			want = want[:100]
		}
		buf := make([]byte, len(want))
		n, err := io.ReadFull(zr, buf)
		if off == int64(len(data)) {
			if err != io.EOF && err != io.ErrUnexpectedEOF && n != 0 {
				t.Fatalf("Seek to end then read: n=%d err=%v", n, err)
			}
			continue
		}
		if err != nil {
			t.Fatalf("read after Seek(%d): %v", off, err)
		}
		if !bytes.Equal(buf, want) {
			t.Fatalf("bytes after Seek(%d) differ", off)
		}
	}
	// Relative and end-based whence.
	if _, err := zr.Seek(100, io.SeekStart); err != nil {
		t.Fatal(err)
	}
	pos, err := zr.Seek(-50, io.SeekCurrent)
	if err != nil || pos != 50 {
		t.Fatalf("SeekCurrent: pos=%d err=%v", pos, err)
	}
	pos, err = zr.Seek(-1, io.SeekEnd)
	if err != nil || pos != int64(len(data))-1 {
		t.Fatalf("SeekEnd: pos=%d err=%v", pos, err)
	}
	// Out of range.
	if _, err := zr.Seek(-1, io.SeekStart); err == nil {
		t.Fatal("negative seek must fail")
	}
	if _, err := zr.Seek(int64(len(data))+1, io.SeekStart); err == nil {
		t.Fatal("seek past end must fail")
	}
	// Seek after draining to EOF must clear it and re-serve.
	if _, err := zr.Seek(0, io.SeekStart); err != nil {
		t.Fatal(err)
	}
	if _, err := io.Copy(io.Discard, zr); err != nil {
		t.Fatal(err)
	}
	if _, err := zr.Read(make([]byte, 1)); err != io.EOF {
		t.Fatalf("want io.EOF at end, got %v", err)
	}
	if _, err := zr.Seek(5, io.SeekStart); err != nil {
		t.Fatalf("seek after EOF: %v", err)
	}
	buf := make([]byte, 8)
	if _, err := io.ReadFull(zr, buf); err != nil || !bytes.Equal(buf, data[5:13]) {
		t.Fatalf("read after post-EOF seek: %v", err)
	}
}

func TestReaderReadAt(t *testing.T) {
	data := sensorLike(t, 64<<10, 5)
	comp := indexedStream(t, data, 0, nil)
	zr, err := NewReader(bytes.NewReader(comp))
	if err != nil {
		t.Fatal(err)
	}
	for _, rng := range [][2]int64{{0, 100}, {17_000, 4096}, {int64(len(data)) - 10, 10}} {
		buf := make([]byte, rng[1])
		n, err := zr.ReadAt(buf, rng[0])
		if err != nil {
			t.Fatalf("ReadAt(%d,%d): %v", rng[0], rng[1], err)
		}
		if int64(n) != rng[1] || !bytes.Equal(buf, data[rng[0]:rng[0]+rng[1]]) {
			t.Fatalf("ReadAt(%d,%d) returned wrong bytes", rng[0], rng[1])
		}
	}
	// A range running past the end returns the short count with io.EOF.
	buf := make([]byte, 100)
	n, err := zr.ReadAt(buf, int64(len(data))-30)
	if n != 30 || err != io.EOF {
		t.Fatalf("ReadAt past end: n=%d err=%v", n, err)
	}
}

func TestSeekRequiresIndex(t *testing.T) {
	comp, err := CompressBytes(sensorLike(t, 4096, 6), Config{})
	if err != nil {
		t.Fatal(err)
	}
	zr := mustReader(t, bytes.NewReader(comp))
	if _, err := zr.Seek(0, io.SeekStart); !errors.Is(err, ErrNoIndex) {
		t.Fatalf("Seek on unindexed stream: %v, want ErrNoIndex", err)
	}
	// Unseekable source.
	data := sensorLike(t, 4096, 6)
	zr2 := mustReader(t, bytes.NewBuffer(indexedStream(t, data, 0, nil)))
	if _, err := zr2.Seek(0, io.SeekStart); err == nil {
		t.Fatal("Seek on unseekable source must fail")
	}
}

// TestIndexedDecodeDifferential pins the indexed parallel decode —
// both one-shot and streaming — byte-identical to serial decode.
func TestIndexedDecodeDifferential(t *testing.T) {
	for _, size := range []int{0, 31, 1000, 16 << 10, 64 << 10, 200_000 + 7} {
		for _, every := range []int{0, 4 << 10, 40 << 10} {
			data := sensorLike(t, size, int64(size+every))
			comp := indexedStream(t, data, every, nil)

			serial, err := DecompressBytes(comp)
			if err != nil {
				t.Fatalf("size=%d every=%d: serial: %v", size, every, err)
			}
			zr, err := NewReader(nil, WithWorkers(4))
			if err != nil {
				t.Fatal(err)
			}
			oneShot, err := zr.DecodeAll(comp, nil)
			if err != nil {
				t.Fatalf("size=%d every=%d: DecodeAll: %v", size, every, err)
			}
			if !bytes.Equal(oneShot, serial) {
				t.Fatalf("size=%d every=%d: indexed DecodeAll diverges from serial", size, every)
			}
			// Pooled second call.
			if again, err := zr.DecodeAll(comp, nil); err != nil || !bytes.Equal(again, serial) {
				t.Fatalf("size=%d every=%d: pooled DecodeAll diverges: %v", size, every, err)
			}

			sr, err := NewReader(bytes.NewReader(comp), WithWorkers(4))
			if err != nil {
				t.Fatal(err)
			}
			streamed, err := io.ReadAll(sr)
			if err != nil {
				t.Fatalf("size=%d every=%d: streaming fan-out: %v", size, every, err)
			}
			if !bytes.Equal(streamed, serial) {
				t.Fatalf("size=%d every=%d: streaming fan-out diverges from serial", size, every)
			}
			if err := sr.Close(); err != nil {
				t.Fatal(err)
			}
		}
	}
}

// TestIndexedDecodeAllAppends pins DecodeAll's append contract on the
// fan-out path: dst's existing bytes survive in place.
func TestIndexedDecodeAllAppends(t *testing.T) {
	data := sensorLike(t, 64<<10, 11)
	comp := indexedStream(t, data, 0, nil)
	zr, err := NewReader(nil, WithWorkers(4))
	if err != nil {
		t.Fatal(err)
	}
	prefix := []byte("already-here")
	out, err := zr.DecodeAll(comp, append([]byte(nil), prefix...))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out[:len(prefix)], prefix) || !bytes.Equal(out[len(prefix):], data) {
		t.Fatal("DecodeAll did not append to dst")
	}
}

// TestIndexedStatsMatchSerial pins the fan-out reader's Stats against
// the serial reader's: same chunks, hits, misses, tail.
func TestIndexedStatsMatchSerial(t *testing.T) {
	data := sensorLike(t, 64<<10+9, 12)
	comp := indexedStream(t, data, 0, nil)
	ser := mustReader(t, bytes.NewReader(comp))
	if _, err := io.Copy(io.Discard, ser); err != nil {
		t.Fatal(err)
	}
	par, err := NewReader(bytes.NewReader(comp), WithWorkers(4))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := io.Copy(io.Discard, par); err != nil {
		t.Fatal(err)
	}
	if ser.Stats != par.Stats {
		t.Fatalf("stats diverge: serial %+v parallel %+v", ser.Stats, par.Stats)
	}
}

// TestIndexedFooterCorruption: every way the footer can lie must be
// detected, and on the workers path it must surface as an error — not
// silently decode serially.
func TestIndexedFooterCorruption(t *testing.T) {
	data := sensorLike(t, 64<<10, 13)
	comp := indexedStream(t, data, 0, nil)
	fl := int(binary.LittleEndian.Uint32(comp[len(comp)-8:]))
	footerStart := len(comp) - fl

	mutate := map[string]func(b []byte) []byte{
		"crc-flip": func(b []byte) []byte {
			b[footerStart+indexFixedLen] ^= 0x01 // first group offset byte
			return b
		},
		"length-flip": func(b []byte) []byte {
			b[len(b)-8] ^= 0x01
			return b
		},
		"end-magic": func(b []byte) []byte {
			b[len(b)-1] ^= 0x01
			return b
		},
		"truncated-footer": func(b []byte) []byte {
			return b[:len(b)-4]
		},
		"checkpoint-past-eof": func(b []byte) []byte {
			// Point the trailer offset beyond the container, re-CRC so
			// only the semantic check can catch it.
			binary.LittleEndian.PutUint64(b[footerStart+28:], uint64(len(b))+1000)
			crcOff := len(b) - indexTailLen
			binary.LittleEndian.PutUint32(b[crcOff:], crc32.ChecksumIEEE(b[footerStart:crcOff]))
			return b
		},
	}
	for name, fn := range mutate {
		bad := fn(append([]byte(nil), comp...))
		zr, err := NewReader(nil, WithWorkers(4))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := zr.DecodeAll(bad, nil); !errors.Is(err, ErrCorrupt) {
			t.Errorf("%s: DecodeAll err = %v, want ErrCorrupt", name, err)
		}
		sr, err := NewReader(bytes.NewReader(bad), WithWorkers(4))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := io.ReadAll(sr); !errors.Is(err, ErrCorrupt) {
			t.Errorf("%s: streaming err = %v, want ErrCorrupt", name, err)
		}
	}
}

// TestStreamTruncatedAtEveryBoundary cuts containers of every version
// at every single byte offset: no truncation may ever read as a clean
// end of stream, and any cut inside a structure must be reported as
// io.ErrUnexpectedEOF (wrapped in ErrCorrupt).
func TestStreamTruncatedAtEveryBoundary(t *testing.T) {
	dict, err := TrainDict(sensorLike(t, 1<<13, 14), Config{})
	if err != nil {
		t.Fatal(err)
	}
	data := sensorLike(t, 3000, 15)
	data = append(data, []byte("odd-tail")...) // force a tail block

	streams := map[string][]byte{}
	v1, err := CompressBytes(data, Config{})
	if err != nil {
		t.Fatal(err)
	}
	streams["v1-serial"] = v1
	v2, err := CompressBytesParallel(data, Config{}, 3)
	if err != nil {
		t.Fatal(err)
	}
	streams["v2-sharded"] = v2
	var v3buf bytes.Buffer
	zw, err := NewWriter(&v3buf, WithDict(dict))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := zw.Write(data); err != nil {
		t.Fatal(err)
	}
	if err := zw.Close(); err != nil {
		t.Fatal(err)
	}
	streams["v3-dict"] = v3buf.Bytes()
	streams["v4-indexed"] = indexedStream(t, data, 1<<10, nil)

	decode := map[string]func(src []byte) error{
		"serial": func(src []byte) error {
			opts := []Option{WithDict(dict)}
			zr, err := NewReader(bytes.NewReader(src), opts...)
			if err != nil {
				return err
			}
			_, err = io.ReadAll(zr)
			return err
		},
		"workers": func(src []byte) error {
			zr, err := NewReader(bytes.NewReader(src), WithDict(dict), WithWorkers(4))
			if err != nil {
				return err
			}
			defer zr.Close()
			_, err = io.ReadAll(zr)
			return err
		},
		"decodeall": func(src []byte) error {
			zr, err := NewReader(nil, WithDict(dict), WithWorkers(4))
			if err != nil {
				return err
			}
			_, err = zr.DecodeAll(src, nil)
			return err
		},
	}

	for sname, full := range streams {
		for cut := 0; cut < len(full); cut++ {
			trunc := full[:cut:cut]
			for dname, dec := range decode {
				err := dec(trunc)
				if err == nil {
					t.Fatalf("%s/%s cut at %d/%d: truncated container decoded cleanly",
						sname, dname, cut, len(full))
				}
				if errors.Is(err, io.EOF) && !errors.Is(err, io.ErrUnexpectedEOF) {
					t.Fatalf("%s/%s cut at %d/%d: clean io.EOF for a truncated container: %v",
						sname, dname, cut, len(full), err)
				}
			}
		}
	}
}

// TestReaderResetAfterError pins the reuse-after-failure contract:
// Reset must clear the sticky error, and a dictionary that absorbed
// dynamic entries from a poisoned stream must shed everything past the
// frozen prefix before re-serving.
func TestReaderResetAfterError(t *testing.T) {
	dict, err := TrainDict(sensorLike(t, 1<<13, 16), Config{})
	if err != nil {
		t.Fatal(err)
	}
	data := sensorLike(t, 20<<10, 17)
	var buf bytes.Buffer
	zw, err := NewWriter(&buf, WithDict(dict))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := zw.Write(data); err != nil {
		t.Fatal(err)
	}
	if err := zw.Close(); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	// Cut the stream inside the trailer group: every record group
	// decodes first (mutating the reader's dictionary), then the
	// truncated trailer fails — record bodies carry no checksum, so a
	// bit flip would not reliably error, but a missing trailer must.
	bad := good[: len(good)-8 : len(good)-8]

	zr, err := NewReader(bytes.NewReader(bad), WithDict(dict))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := io.ReadAll(zr); err == nil {
		t.Fatal("corrupted stream decoded cleanly")
	}
	if _, rerr := zr.Read(make([]byte, 1)); rerr == nil {
		t.Fatal("sticky error not sticky")
	}
	// The failed stream's decoder holds dynamic entries; Reset must
	// clear them back to the frozen prefix…
	zr.Reset(bytes.NewReader(good))
	back, err := io.ReadAll(zr)
	if err != nil {
		t.Fatalf("reuse after error: %v", err)
	}
	if !bytes.Equal(back, data) {
		t.Fatal("reuse after error: wrong bytes")
	}
	// …and the reused decoder's dictionary must track the stream
	// exactly: its dynamic size equals what a fresh reader ends with.
	fresh, err := NewReader(bytes.NewReader(good), WithDict(dict))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := io.ReadAll(fresh); err != nil {
		t.Fatal(err)
	}
	if got, want := zr.decs[0].dict.Len(), fresh.decs[0].dict.Len(); got != want {
		t.Fatalf("reused dictionary has %d entries, fresh decode has %d", got, want)
	}
	if zr.decs[0].dict.FrozenLen() != dict.Len() {
		t.Fatalf("frozen prefix %d, want %d", zr.decs[0].dict.FrozenLen(), dict.Len())
	}
	// Mid-stream error path again, then Reset with NO successful decode
	// in between: the dictionary must still start from the prefix only.
	zr.Reset(bytes.NewReader(bad))
	if _, err := io.ReadAll(zr); err == nil {
		t.Fatal("corrupted stream decoded cleanly on reuse")
	}
	zr.Reset(bytes.NewReader(good))
	if back, err := io.ReadAll(zr); err != nil || !bytes.Equal(back, data) {
		t.Fatalf("second reuse after error: %v", err)
	}
}

// TestIndexedEncodeAllMatchesStreaming pins the pooled one-shot
// encoder's output byte-identical to the streaming writer when
// WithIndex is configured.
func TestIndexedEncodeAllMatchesStreaming(t *testing.T) {
	data := sensorLike(t, 40<<10+21, 18)
	streamed := indexedStream(t, data, 0, nil)
	zw, err := NewWriter(nil, WithIndex(0))
	if err != nil {
		t.Fatal(err)
	}
	one := zw.EncodeAll(data, nil)
	if !bytes.Equal(one, streamed) {
		t.Fatal("EncodeAll(WithIndex) diverges from streaming writer")
	}
	// And round-trips through the indexed fan-out.
	zr, err := NewReader(nil, WithWorkers(4))
	if err != nil {
		t.Fatal(err)
	}
	back, err := zr.DecodeAll(one, nil)
	if err != nil || !bytes.Equal(back, data) {
		t.Fatalf("indexed EncodeAll output did not round-trip: %v", err)
	}
}

// TestIndexedWriterReset pins pooled reuse of an indexed Writer: the
// second stream must be byte-identical to a fresh writer's.
func TestIndexedWriterReset(t *testing.T) {
	data := sensorLike(t, 40<<10, 19)
	var a, b bytes.Buffer
	zw, err := NewWriter(&a, WithIndex(0))
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []*bytes.Buffer{&a, &b} {
		zw.Reset(w)
		if _, err := zw.Write(data); err != nil {
			t.Fatal(err)
		}
		if err := zw.Close(); err != nil {
			t.Fatal(err)
		}
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("indexed Writer.Reset is not deterministic")
	}
	if !bytes.Equal(a.Bytes(), indexedStream(t, data, 0, nil)) {
		t.Fatal("reused indexed Writer diverges from fresh writer")
	}
}

// FuzzDecodeIndexed drives arbitrary bytes — seeded with real indexed
// containers and targeted footer mutations — through every indexed
// decode surface. Whatever the input: no panics, the fan-out paths
// never accept what serial decoding rejects, and on shared accepts all
// outputs are byte-identical.
func FuzzDecodeIndexed(f *testing.F) {
	// Seeds stay small (16 KiB of plaintext): the fuzz engine minimizes
	// every coverage-expanding mutation for up to a minute, and that
	// converges orders of magnitude faster on ~20 KB containers than on
	// the megabyte streams the throughput tests use.
	seed := sensorLikeData(16<<10, 23)
	full := func(every int) []byte {
		var buf bytes.Buffer
		zw, err := NewWriter(&buf, WithIndex(every))
		if err != nil {
			return nil
		}
		zw.Write(seed)
		zw.Close()
		return buf.Bytes()
	}
	whole := full(4 << 10)
	f.Add(whole)         // index present, 4 segments
	f.Add(full(1 << 10)) // many segments
	f.Add(full(1 << 20)) // single segment
	if v1, err := CompressBytes(seed[:4096], Config{}); err == nil {
		f.Add(v1) // index absent
	}
	if len(whole) > 12 {
		crcFlipped := append([]byte(nil), whole...)
		crcFlipped[len(crcFlipped)-indexTailLen] ^= 0x01
		f.Add(crcFlipped) // CRC-flipped footer
		short := append([]byte(nil), whole...)
		f.Add(short[:len(short)-20]) // truncated footer
	}
	{
		// Zero-group index: an empty indexed stream.
		var buf bytes.Buffer
		if zw, err := NewWriter(&buf, WithIndex(0)); err == nil {
			zw.Close()
			f.Add(buf.Bytes())
		}
	}
	{
		// Checkpoint/trailer offset pointing past EOF, CRC repaired.
		bad := append([]byte(nil), whole...)
		fl := int(binary.LittleEndian.Uint32(bad[len(bad)-8:]))
		fs := len(bad) - fl
		if fs > 0 {
			binary.LittleEndian.PutUint64(bad[fs+28:], uint64(len(bad)+999))
			crcOff := len(bad) - indexTailLen
			binary.LittleEndian.PutUint32(bad[crcOff:], crc32.ChecksumIEEE(bad[fs:crcOff]))
			f.Add(bad)
		}
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		serial, serialErr := DecompressBytes(data)

		zr, err := NewReader(nil, WithWorkers(4))
		if err != nil {
			t.Fatal(err)
		}
		oneShot, oneErr := zr.DecodeAll(data, nil)

		sr, err := NewReader(bytes.NewReader(data), WithWorkers(4))
		if err != nil {
			t.Fatal(err)
		}
		streamed, streamErr := io.ReadAll(sr)
		sr.Close()

		// The fan-out may reject streams serial decoding tolerates (a
		// corrupt footer is invisible to a trailer-stopping reader),
		// never the reverse.
		if serialErr != nil {
			if oneErr == nil {
				t.Fatal("indexed DecodeAll accepted a stream serial decoding rejects")
			}
			if streamErr == nil {
				t.Fatal("indexed streaming accepted a stream serial decoding rejects")
			}
			return
		}
		if oneErr == nil && !bytes.Equal(oneShot, serial) {
			t.Fatal("indexed DecodeAll diverges from serial decode")
		}
		if streamErr == nil && !bytes.Equal(streamed, serial) {
			t.Fatal("indexed streaming decode diverges from serial decode")
		}

		// Seek must round-trip against the serially decoded bytes.
		if len(serial) > 0 {
			skr, err := NewReader(bytes.NewReader(data))
			if err != nil {
				t.Fatal(err)
			}
			off := int64(len(serial) / 3)
			if _, err := skr.Seek(off, io.SeekStart); err == nil {
				n := len(serial) - int(off)
				if n > 256 {
					n = 256
				}
				buf := make([]byte, n)
				if _, err := io.ReadFull(skr, buf); err != nil {
					t.Fatalf("read after fuzz Seek: %v", err)
				}
				if !bytes.Equal(buf, serial[off:int(off)+n]) {
					t.Fatal("Seek round trip diverges from serial decode")
				}
			}
		}
	})
}

// errAfter fails with errWrite once limit bytes have been written —
// exercising writer error paths mid-stream.
type errAfter struct {
	limit int
	n     int
}

var errWrite = fmt.Errorf("synthetic write failure")

func (w *errAfter) Write(p []byte) (int, error) {
	w.n += len(p)
	if w.n > w.limit {
		return 0, errWrite
	}
	return len(p), nil
}

func TestIndexedWriterPropagatesWriteErrors(t *testing.T) {
	data := sensorLike(t, 64<<10, 20)
	// Let the header and a couple of groups through, then fail: the
	// footer write error must reach Close.
	for _, limit := range []int{4, 100, 2000} {
		zw, err := NewWriter(&errAfter{limit: limit}, WithIndex(0))
		if err != nil {
			t.Fatal(err)
		}
		_, werr := zw.Write(data)
		cerr := zw.Close()
		if werr == nil && cerr == nil {
			t.Fatalf("limit=%d: no error surfaced", limit)
		}
	}
}

// TestDecodeAllIndexedSpeedup pins the fan-out acceptance criterion:
// DecodeAll of an indexed stream with 4 workers must run at least 2x
// faster than the serial decode of the equivalent plain stream. The
// two paths share the same inner loop, so the speedup comes entirely
// from decoding checkpoint segments on real cores — the test skips on
// machines without at least 4 of them, where the criterion is
// physically unmeasurable (the fan-out then merely matches serial
// throughput; see BenchmarkDecodeAllIndexed).
func TestDecodeAllIndexedSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("timing comparison skipped in -short mode")
	}
	if n := runtime.NumCPU(); n < 4 {
		t.Skipf("need >=4 CPUs for a meaningful fan-out speedup, have %d", n)
	}
	data := sensorLike(t, 1<<20, 29)
	dict, err := TrainDict(data[:1<<16], Config{})
	if err != nil {
		t.Fatal(err)
	}
	encSerial, err := NewWriter(nil, WithDict(dict))
	if err != nil {
		t.Fatal(err)
	}
	encIdx, err := NewWriter(nil, WithDict(dict), WithIndex(0))
	if err != nil {
		t.Fatal(err)
	}
	plain := encSerial.EncodeAll(data, nil)
	indexed := encIdx.EncodeAll(data, nil)

	decSerial, err := NewReader(nil, WithDict(dict))
	if err != nil {
		t.Fatal(err)
	}
	decIdx, err := NewReader(nil, WithDict(dict), WithWorkers(4))
	if err != nil {
		t.Fatal(err)
	}
	// Interleaved best-of-N: the minimum over several rounds is robust
	// against scheduler noise, and interleaving keeps cache/thermal
	// conditions comparable between the two paths.
	measure := func(zr *Reader, comp []byte) time.Duration {
		var buf []byte
		start := time.Now()
		buf, err := zr.DecodeAll(comp, buf[:0])
		if err != nil {
			t.Fatal(err)
		}
		if len(buf) != len(data) {
			t.Fatalf("decoded %d bytes, want %d", len(buf), len(data))
		}
		return time.Since(start)
	}
	measure(decSerial, plain) // warm pools before timing
	measure(decIdx, indexed)
	serialBest, idxBest := time.Duration(1<<62), time.Duration(1<<62)
	for round := 0; round < 5; round++ {
		serialBest = min(serialBest, measure(decSerial, plain))
		idxBest = min(idxBest, measure(decIdx, indexed))
	}
	if idxBest*2 > serialBest {
		t.Errorf("indexed 4-worker decode took %v, serial %v: speedup %.2fx < 2x",
			idxBest, serialBest, float64(serialBest)/float64(idxBest))
	}
	t.Logf("serial %v, indexed(4 workers) %v: %.2fx", serialBest, idxBest,
		float64(serialBest)/float64(idxBest))
}
