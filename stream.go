package zipline

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"zipline/internal/bitvec"
	"zipline/internal/gd"
)

// Stream container format (see DESIGN.md):
//
//	header:  "ZLGD" | version u8 | m u8 | idBits u8 | t u8
//	blocks:  u32le byteLen | u32le bitLen | payload
//	trailer: a block with byteLen == 0
//
// Each block carries bit-packed records that never straddle blocks:
//
//	tag 0 (1 bit)  miss: deviation(m) | extra(1) | basis(k)
//	tag 1 (1 bit)  hit:  deviation(m) | extra(1) | id(idBits)
//
// plus, only as the final record of the final data block,
//
//	tail marker: a miss/hit record cannot start with bitLen < 2, so a
//	block whose first byte is 0xFF after records end encodes the tail:
//	0xFF | u16le length | raw bytes.
//
// Misses insert the basis into an LRU dictionary; the decoder applies
// identical insertions and lookups, so identifier assignment evolves
// in lockstep on both sides without any side channel — the streaming
// analogue of the control-plane protocol.
//
// Version 2 is the parallel (sharded) container written by
// ParallelWriter. The 8-byte header above is followed by
//
//	u8 shards | u8 reserved ×3
//
// and blocks become 16-byte-headed groups, one per input segment:
//
//	u32le byteLen | u32le bitLen | u32le seq | u8 shard | u8 reserved ×3
//
// seq counts groups from zero; shard names the basis dictionary the
// group's records were encoded against (the encoder assigns segment
// seq to shard seq mod shards, and each shard's groups appear in the
// stream in that shard's encode order). A decoder keeps one
// dictionary per shard and replays each group against its recorded
// shard, so identifier assignment stays in lockstep per shard whether
// the groups are decoded serially or by per-shard workers. The tail
// marker and the all-zero trailer group work as in version 1. Record
// payloads are identical across versions.
const (
	streamMagic = "ZLGD"
	streamV1    = 1 // serial container, written by Writer
	streamV2    = 2 // sharded container, written by ParallelWriter
)

// ErrCorrupt reports an undecodable stream.
var ErrCorrupt = errors.New("zipline: corrupt stream")

const (
	defaultBlockBytes = 64 << 10
	maxBlockBytes     = 1 << 24
	maxTailBytes      = 0xFFFF
)

// tailBlockFlag marks the bitLen word of a raw tail block.
const tailBlockFlag = 1 << 31

// blockEncoder is the reusable encode unit shared by the serial
// Writer and every ParallelWriter worker: it turns fixed-size chunks
// into bit-packed records against one basis dictionary. The block and
// stats destinations are fields so a worker can repoint them at the
// current job while the dictionary persists across jobs.
type blockEncoder struct {
	codec *Codec
	dict  *gd.Dictionary
	block *bitvec.Writer
	stats *StreamStats
	split gd.Split // scratch reused across chunks
}

func newBlockEncoder(codec *Codec) *blockEncoder {
	return &blockEncoder{codec: codec, dict: gd.NewDictionary(codec.cfg.IDBits)}
}

// encodeChunk appends one chunk's record to the current block.
func (e *blockEncoder) encodeChunk(chunk []byte) error {
	if err := e.codec.inner.SplitChunkInto(chunk, &e.split); err != nil {
		return err
	}
	m := e.codec.DeviationBits()
	e.stats.Chunks++
	if id, ok := e.dict.Lookup(e.split.Basis); ok {
		e.block.WriteBit(true)
		e.block.WriteUint(uint64(e.split.Deviation), m)
		e.block.WriteUint(uint64(e.split.Extra), 1)
		e.block.WriteUint(uint64(id), e.codec.cfg.IDBits)
		e.stats.Hits++
	} else {
		e.dict.Insert(e.split.Basis)
		e.block.WriteBit(false)
		e.block.WriteUint(uint64(e.split.Deviation), m)
		e.block.WriteUint(uint64(e.split.Extra), 1)
		e.block.WriteVector(e.split.Basis)
		e.stats.Misses++
	}
	return nil
}

// blockDecoder is the matching decode unit: it replays one shard's
// record blocks against one basis dictionary, mirroring the encoder's
// insertions and recency refreshes.
type blockDecoder struct {
	codec *Codec
	dict  *gd.Dictionary
	stats *StreamStats
}

func newBlockDecoder(codec *Codec, stats *StreamStats) *blockDecoder {
	return &blockDecoder{codec: codec, dict: gd.NewDictionary(codec.cfg.IDBits), stats: stats}
}

// decodeRecords replays one block of records, appending the decoded
// bytes to out.
func (d *blockDecoder) decodeRecords(body []byte, bitLen int, out []byte) ([]byte, error) {
	br := bitvec.NewReaderBits(body, bitLen)
	m := d.codec.DeviationBits()
	k := d.codec.BasisBits()
	idBits := d.codec.cfg.IDBits
	for br.Remaining() > 0 {
		hit, err := br.ReadBit()
		if err != nil {
			return out, fmt.Errorf("%w: truncated record", ErrCorrupt)
		}
		dev, err := br.ReadUint(m)
		if err != nil {
			return out, fmt.Errorf("%w: truncated deviation", ErrCorrupt)
		}
		extra, err := br.ReadUint(1)
		if err != nil {
			return out, fmt.Errorf("%w: truncated extra bit", ErrCorrupt)
		}
		var basis *bitvec.Vector
		if hit {
			id, err := br.ReadUint(idBits)
			if err != nil {
				return out, fmt.Errorf("%w: truncated identifier", ErrCorrupt)
			}
			// Mirrors the encoder's lookup including its recency refresh.
			b, ok := d.dict.LookupIDTouch(uint32(id))
			if !ok {
				return out, fmt.Errorf("%w: unknown identifier %d", ErrCorrupt, id)
			}
			basis = b
			d.stats.Hits++
		} else {
			b, err := br.ReadVector(k)
			if err != nil {
				return out, fmt.Errorf("%w: truncated basis", ErrCorrupt)
			}
			d.dict.Insert(b)
			basis = b
			d.stats.Misses++
		}
		d.stats.Chunks++
		out, err = d.codec.inner.MergeChunk(gd.Split{
			Basis:     basis,
			Deviation: uint32(dev),
			Extra:     uint8(extra),
		}, out)
		if err != nil {
			return out, fmt.Errorf("%w: %v", ErrCorrupt, err)
		}
	}
	return out, nil
}

// parseTailBlock validates a raw tail block body and returns the tail
// bytes (aliasing body).
func parseTailBlock(body []byte) ([]byte, error) {
	if len(body) < 3 || body[0] != 0xFF {
		return nil, fmt.Errorf("%w: malformed tail block", ErrCorrupt)
	}
	n := int(binary.LittleEndian.Uint16(body[1:3]))
	if len(body) != 3+n {
		return nil, fmt.Errorf("%w: tail length mismatch", ErrCorrupt)
	}
	return body[3:], nil
}

// appendTailBlock encodes the tail body: 0xFF | u16le length | bytes.
func appendTailBlock(dst, tail []byte) []byte {
	dst = append(dst, 0xFF)
	dst = binary.LittleEndian.AppendUint16(dst, uint16(len(tail)))
	return append(dst, tail...)
}

// Writer compresses a byte stream with GD. It buffers at most one
// chunk of input plus one output block. Close flushes the tail and
// the trailer; the stream is unreadable without it.
type Writer struct {
	w   io.Writer
	enc *blockEncoder

	pending     []byte // partial input chunk
	wroteHeader bool
	closed      bool

	// Stats accumulate over the writer's lifetime.
	Stats StreamStats
}

// StreamStats counts records and bytes through a Writer or Reader.
type StreamStats struct {
	Chunks    uint64
	Hits      uint64
	Misses    uint64
	TailBytes uint64
}

// add accumulates o into s.
func (s *StreamStats) add(o StreamStats) {
	s.Chunks += o.Chunks
	s.Hits += o.Hits
	s.Misses += o.Misses
	s.TailBytes += o.TailBytes
}

// NewWriter builds a compressing writer with the given configuration.
func NewWriter(w io.Writer, cfg Config) (*Writer, error) {
	codec, err := NewCodec(cfg)
	if err != nil {
		return nil, err
	}
	zw := &Writer{w: w, enc: newBlockEncoder(codec)}
	zw.enc.block = bitvec.NewWriter(defaultBlockBytes + 256)
	zw.enc.stats = &zw.Stats
	return zw, nil
}

// Write implements io.Writer.
func (zw *Writer) Write(p []byte) (int, error) {
	if zw.closed {
		return 0, fmt.Errorf("zipline: write after Close")
	}
	if err := zw.writeHeader(); err != nil {
		return 0, err
	}
	n := len(p)
	cs := zw.enc.codec.ChunkSize()
	// Drain the pending partial chunk first.
	if len(zw.pending) > 0 {
		need := cs - len(zw.pending)
		if need > len(p) {
			zw.pending = append(zw.pending, p...)
			return n, nil
		}
		zw.pending = append(zw.pending, p[:need]...)
		p = p[need:]
		if err := zw.encodeChunk(zw.pending); err != nil {
			return 0, err
		}
		zw.pending = zw.pending[:0]
	}
	for len(p) >= cs {
		if err := zw.encodeChunk(p[:cs]); err != nil {
			return 0, err
		}
		p = p[cs:]
	}
	zw.pending = append(zw.pending, p...)
	return n, nil
}

// streamHeader assembles the 8-byte container header.
func streamHeader(version uint8, cfg Config) []byte {
	return []byte{streamMagic[0], streamMagic[1], streamMagic[2], streamMagic[3],
		version, byte(cfg.M), byte(cfg.IDBits), byte(cfg.T)}
}

func (zw *Writer) writeHeader() error {
	if zw.wroteHeader {
		return nil
	}
	zw.wroteHeader = true
	_, err := zw.w.Write(streamHeader(streamV1, zw.enc.codec.cfg))
	return err
}

func (zw *Writer) encodeChunk(chunk []byte) error {
	if err := zw.enc.encodeChunk(chunk); err != nil {
		return err
	}
	if len(zw.enc.block.Bytes()) >= defaultBlockBytes {
		return zw.flushBlock()
	}
	return nil
}

func (zw *Writer) flushBlock() error {
	block := zw.enc.block
	if block.Len() == 0 {
		return nil
	}
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:], uint32(len(block.Bytes())))
	binary.LittleEndian.PutUint32(hdr[4:], uint32(block.Len()))
	if _, err := zw.w.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := zw.w.Write(block.Bytes()); err != nil {
		return err
	}
	block.Reset()
	return nil
}

// Close flushes buffered records, the input tail and the stream
// trailer. It does not close the underlying writer.
func (zw *Writer) Close() error {
	if zw.closed {
		return nil
	}
	zw.closed = true
	if err := zw.writeHeader(); err != nil {
		return err
	}
	if err := zw.flushBlock(); err != nil {
		return err
	}
	// Tail block: raw trailing bytes that did not fill a chunk.
	if len(zw.pending) > 0 {
		if len(zw.pending) > maxTailBytes {
			return fmt.Errorf("zipline: tail of %d bytes exceeds format limit", len(zw.pending))
		}
		zw.Stats.TailBytes = uint64(len(zw.pending))
		body := appendTailBlock(make([]byte, 0, 3+len(zw.pending)), zw.pending)
		var hdr [8]byte
		binary.LittleEndian.PutUint32(hdr[0:], uint32(len(body)))
		binary.LittleEndian.PutUint32(hdr[4:], uint32(len(body)*8)|tailBlockFlag)
		if _, err := zw.w.Write(hdr[:]); err != nil {
			return err
		}
		if _, err := zw.w.Write(body); err != nil {
			return err
		}
	}
	var trailer [8]byte
	_, err := zw.w.Write(trailer[:])
	return err
}

// Reader decompresses a stream produced by Writer or ParallelWriter
// (it understands both container versions). It implements io.Reader.
type Reader struct {
	r       io.Reader
	codec   *Codec
	version uint8
	decs    []*blockDecoder // one per shard; v1 streams have one
	nextSeq uint32

	out     []byte // decoded bytes not yet read
	done    bool
	started bool

	// Stats accumulate over the reader's lifetime.
	Stats StreamStats
}

// NewReader opens a compressed stream, reading and validating its
// header lazily on first Read.
func NewReader(r io.Reader) (*Reader, error) {
	return &Reader{r: r}, nil
}

func (zr *Reader) start() error {
	if zr.started {
		return nil
	}
	zr.started = true
	version, codec, shards, err := parseStreamHeader(zr.r)
	if err != nil {
		return err
	}
	zr.version, zr.codec = version, codec
	// Shard decoders are created lazily on first use; together with
	// insert-proportional Dictionary sizing this keeps decoder memory
	// tied to real stream content, not to the attacker-controlled
	// shards and idBits header bytes.
	zr.decs = make([]*blockDecoder, shards)
	return nil
}

// parseStreamHeader reads and validates the container header — magic,
// version, codec configuration and (v2) shard count. It is the single
// authority both Reader and ParallelReader open streams with, so the
// two decoders accept exactly the same headers.
func parseStreamHeader(r io.Reader) (version uint8, codec *Codec, shards int, err error) {
	var hdr [8]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, 0, fmt.Errorf("%w: header: %v", ErrCorrupt, err)
	}
	if string(hdr[:4]) != streamMagic {
		return 0, nil, 0, fmt.Errorf("%w: bad magic %q", ErrCorrupt, hdr[:4])
	}
	version = hdr[4]
	if version != streamV1 && version != streamV2 {
		return 0, nil, 0, fmt.Errorf("%w: unsupported version %d", ErrCorrupt, version)
	}
	codec, cerr := NewCodec(Config{M: int(hdr[5]), IDBits: int(hdr[6]), T: int(hdr[7])})
	if cerr != nil {
		return 0, nil, 0, fmt.Errorf("%w: %v", ErrCorrupt, cerr)
	}
	shards = 1
	if version == streamV2 {
		var ext [4]byte
		if _, err := io.ReadFull(r, ext[:]); err != nil {
			return 0, nil, 0, fmt.Errorf("%w: v2 header: %v", ErrCorrupt, err)
		}
		shards = int(ext[0])
		if shards == 0 {
			return 0, nil, 0, fmt.Errorf("%w: zero shards", ErrCorrupt)
		}
	}
	return version, codec, shards, nil
}

// Read implements io.Reader.
func (zr *Reader) Read(p []byte) (int, error) {
	if err := zr.start(); err != nil {
		return 0, err
	}
	for len(zr.out) == 0 {
		if zr.done {
			return 0, io.EOF
		}
		if err := zr.readBlock(); err != nil {
			return 0, err
		}
	}
	n := copy(p, zr.out)
	zr.out = zr.out[n:]
	return n, nil
}

func (zr *Reader) readBlock() error {
	byteLen, bitWord, shard, err := readBlockHeader(zr.r, zr.version, &zr.nextSeq)
	if err != nil {
		return err
	}
	if byteLen == 0 {
		zr.done = true
		return nil
	}
	body := make([]byte, byteLen)
	if _, err := io.ReadFull(zr.r, body); err != nil {
		return fmt.Errorf("%w: block body: %v", ErrCorrupt, err)
	}
	tail, isTail, err := classifyGroup(bitWord, shard, len(zr.decs), body)
	if err != nil {
		return err
	}
	if isTail {
		zr.out = append(zr.out, tail...)
		zr.Stats.TailBytes += uint64(len(tail))
		return nil
	}
	if zr.decs[shard] == nil {
		zr.decs[shard] = newBlockDecoder(zr.codec, &zr.Stats)
	}
	zr.out, err = zr.decs[shard].decodeRecords(body, int(bitWord), zr.out)
	return err
}

// classifyGroup applies the shared accept rules for a group body in
// either container version: tail groups are validated and their bytes
// returned (aliasing body); record groups get their shard and bit
// length bounds checked. Keeping one validator means the serial and
// parallel decoders accept exactly the same streams.
func classifyGroup(bitWord uint32, shard uint8, shards int, body []byte) (tail []byte, isTail bool, err error) {
	if bitWord&tailBlockFlag != 0 {
		t, err := parseTailBlock(body)
		return t, true, err
	}
	if int(shard) >= shards {
		return nil, false, fmt.Errorf("%w: shard %d of %d", ErrCorrupt, shard, shards)
	}
	if int(bitWord) > len(body)*8 {
		return nil, false, fmt.Errorf("%w: bit length exceeds block", ErrCorrupt)
	}
	return nil, false, nil
}

// readBlockHeader reads and validates one block (v1) or group (v2)
// header, returning the payload length, the bit-length word and the
// shard. nextSeq tracks the expected v2 sequence number.
func readBlockHeader(r io.Reader, version uint8, nextSeq *uint32) (byteLen, bitWord uint32, shard uint8, err error) {
	var hdr [16]byte
	n := 8
	if version == streamV2 {
		n = 16
	}
	if _, err := io.ReadFull(r, hdr[:n]); err != nil {
		return 0, 0, 0, fmt.Errorf("%w: block header: %v", ErrCorrupt, err)
	}
	byteLen = binary.LittleEndian.Uint32(hdr[0:])
	bitWord = binary.LittleEndian.Uint32(hdr[4:])
	if version == streamV2 {
		if byteLen == 0 {
			return 0, 0, 0, nil
		}
		seq := binary.LittleEndian.Uint32(hdr[8:])
		if seq != *nextSeq {
			return 0, 0, 0, fmt.Errorf("%w: group %d out of order (want %d)", ErrCorrupt, seq, *nextSeq)
		}
		*nextSeq++
		shard = hdr[12]
	}
	if byteLen > maxBlockBytes {
		return 0, 0, 0, fmt.Errorf("%w: block of %d bytes", ErrCorrupt, byteLen)
	}
	return byteLen, bitWord, shard, nil
}

// CompressBytes compresses data in one call.
func CompressBytes(data []byte, cfg Config) ([]byte, error) {
	var buf appendWriter
	zw, err := NewWriter(&buf, cfg)
	if err != nil {
		return nil, err
	}
	if _, err := zw.Write(data); err != nil {
		return nil, err
	}
	if err := zw.Close(); err != nil {
		return nil, err
	}
	return buf.b, nil
}

// DecompressBytes decompresses a stream produced by CompressBytes,
// Writer or ParallelWriter in one call.
func DecompressBytes(data []byte) ([]byte, error) {
	zr, err := NewReader(bytes.NewReader(data))
	if err != nil {
		return nil, err
	}
	var out []byte
	buf := make([]byte, 64<<10)
	for {
		n, err := zr.Read(buf)
		out = append(out, buf[:n]...)
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, err
		}
	}
}

type appendWriter struct{ b []byte }

func (w *appendWriter) Write(p []byte) (int, error) {
	w.b = append(w.b, p...)
	return len(p), nil
}
