package zipline

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"zipline/internal/bitvec"
	"zipline/internal/gd"
)

// Stream container format (see DESIGN.md):
//
//	header:  "ZLGD" | version u8 | m u8 | idBits u8 | t u8
//	blocks:  u32le byteLen | u32le bitLen | payload
//	trailer: a block with byteLen == 0
//
// Each block carries bit-packed records that never straddle blocks:
//
//	tag 0 (1 bit)  miss: deviation(m) | extra(1) | basis(k)
//	tag 1 (1 bit)  hit:  deviation(m) | extra(1) | id(idBits)
//
// plus, only as the final record of the final data block,
//
//	tail marker: a miss/hit record cannot start with bitLen < 2, so a
//	block whose first byte is 0xFF after records end encodes the tail:
//	0xFF | u16le length | raw bytes.
//
// Misses insert the basis into an LRU dictionary; the decoder applies
// identical insertions and lookups, so identifier assignment evolves
// in lockstep on both sides without any side channel — the streaming
// analogue of the control-plane protocol.
const (
	streamMagic   = "ZLGD"
	streamVersion = 1
)

// ErrCorrupt reports an undecodable stream.
var ErrCorrupt = errors.New("zipline: corrupt stream")

const defaultBlockBytes = 64 << 10

// Writer compresses a byte stream with GD. It buffers at most one
// chunk of input plus one output block. Close flushes the tail and
// the trailer; the stream is unreadable without it.
type Writer struct {
	w     io.Writer
	codec *Codec
	dict  *gd.Dictionary

	pending     []byte // partial input chunk
	block       *bitvec.Writer
	wroteHeader bool
	closed      bool

	// Stats accumulate over the writer's lifetime.
	Stats StreamStats
}

// StreamStats counts records and bytes through a Writer or Reader.
type StreamStats struct {
	Chunks    uint64
	Hits      uint64
	Misses    uint64
	TailBytes uint64
}

// NewWriter builds a compressing writer with the given configuration.
func NewWriter(w io.Writer, cfg Config) (*Writer, error) {
	codec, err := NewCodec(cfg)
	if err != nil {
		return nil, err
	}
	return &Writer{
		w:     w,
		codec: codec,
		dict:  gd.NewDictionary(codec.cfg.IDBits),
		block: bitvec.NewWriter(defaultBlockBytes + 256),
	}, nil
}

// Write implements io.Writer.
func (zw *Writer) Write(p []byte) (int, error) {
	if zw.closed {
		return 0, fmt.Errorf("zipline: write after Close")
	}
	if err := zw.writeHeader(); err != nil {
		return 0, err
	}
	n := len(p)
	cs := zw.codec.ChunkSize()
	// Drain the pending partial chunk first.
	if len(zw.pending) > 0 {
		need := cs - len(zw.pending)
		if need > len(p) {
			zw.pending = append(zw.pending, p...)
			return n, nil
		}
		zw.pending = append(zw.pending, p[:need]...)
		p = p[need:]
		if err := zw.encodeChunk(zw.pending); err != nil {
			return 0, err
		}
		zw.pending = zw.pending[:0]
	}
	for len(p) >= cs {
		if err := zw.encodeChunk(p[:cs]); err != nil {
			return 0, err
		}
		p = p[cs:]
	}
	zw.pending = append(zw.pending, p...)
	return n, nil
}

func (zw *Writer) writeHeader() error {
	if zw.wroteHeader {
		return nil
	}
	zw.wroteHeader = true
	hdr := []byte{streamMagic[0], streamMagic[1], streamMagic[2], streamMagic[3],
		streamVersion, byte(zw.codec.cfg.M), byte(zw.codec.cfg.IDBits), byte(zw.codec.cfg.T)}
	_, err := zw.w.Write(hdr)
	return err
}

func (zw *Writer) encodeChunk(chunk []byte) error {
	s, err := zw.codec.inner.SplitChunk(chunk)
	if err != nil {
		return err
	}
	m := zw.codec.DeviationBits()
	zw.Stats.Chunks++
	if id, ok := zw.dict.Lookup(s.Basis); ok {
		zw.block.WriteBit(true)
		zw.block.WriteUint(uint64(s.Deviation), m)
		zw.block.WriteUint(uint64(s.Extra), 1)
		zw.block.WriteUint(uint64(id), zw.codec.cfg.IDBits)
		zw.Stats.Hits++
	} else {
		zw.dict.Insert(s.Basis)
		zw.block.WriteBit(false)
		zw.block.WriteUint(uint64(s.Deviation), m)
		zw.block.WriteUint(uint64(s.Extra), 1)
		zw.block.WriteVector(s.Basis)
		zw.Stats.Misses++
	}
	if len(zw.block.Bytes()) >= defaultBlockBytes {
		return zw.flushBlock()
	}
	return nil
}

func (zw *Writer) flushBlock() error {
	if zw.block.Len() == 0 {
		return nil
	}
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:], uint32(len(zw.block.Bytes())))
	binary.LittleEndian.PutUint32(hdr[4:], uint32(zw.block.Len()))
	if _, err := zw.w.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := zw.w.Write(zw.block.Bytes()); err != nil {
		return err
	}
	zw.block.Reset()
	return nil
}

// Close flushes buffered records, the input tail and the stream
// trailer. It does not close the underlying writer.
func (zw *Writer) Close() error {
	if zw.closed {
		return nil
	}
	zw.closed = true
	if err := zw.writeHeader(); err != nil {
		return err
	}
	if err := zw.flushBlock(); err != nil {
		return err
	}
	// Tail block: raw trailing bytes that did not fill a chunk.
	if len(zw.pending) > 0 {
		if len(zw.pending) > 0xFFFF {
			return fmt.Errorf("zipline: tail of %d bytes exceeds format limit", len(zw.pending))
		}
		zw.Stats.TailBytes = uint64(len(zw.pending))
		body := make([]byte, 0, 3+len(zw.pending))
		body = append(body, 0xFF)
		body = binary.LittleEndian.AppendUint16(body, uint16(len(zw.pending)))
		body = append(body, zw.pending...)
		var hdr [8]byte
		binary.LittleEndian.PutUint32(hdr[0:], uint32(len(body)))
		binary.LittleEndian.PutUint32(hdr[4:], uint32(len(body)*8)|tailBlockFlag)
		if _, err := zw.w.Write(hdr[:]); err != nil {
			return err
		}
		if _, err := zw.w.Write(body); err != nil {
			return err
		}
	}
	var trailer [8]byte
	_, err := zw.w.Write(trailer[:])
	return err
}

// tailBlockFlag marks the bitLen word of a raw tail block.
const tailBlockFlag = 1 << 31

// Reader decompresses a stream produced by Writer. It implements
// io.Reader.
type Reader struct {
	r     io.Reader
	codec *Codec
	dict  *gd.Dictionary

	out     []byte // decoded bytes not yet read
	done    bool
	started bool

	// Stats accumulate over the reader's lifetime.
	Stats StreamStats
}

// NewReader opens a compressed stream, reading and validating its
// header lazily on first Read.
func NewReader(r io.Reader) (*Reader, error) {
	return &Reader{r: r}, nil
}

func (zr *Reader) start() error {
	if zr.started {
		return nil
	}
	zr.started = true
	var hdr [8]byte
	if _, err := io.ReadFull(zr.r, hdr[:]); err != nil {
		return fmt.Errorf("%w: header: %v", ErrCorrupt, err)
	}
	if string(hdr[:4]) != streamMagic {
		return fmt.Errorf("%w: bad magic %q", ErrCorrupt, hdr[:4])
	}
	if hdr[4] != streamVersion {
		return fmt.Errorf("%w: unsupported version %d", ErrCorrupt, hdr[4])
	}
	codec, err := NewCodec(Config{M: int(hdr[5]), IDBits: int(hdr[6]), T: int(hdr[7])})
	if err != nil {
		return fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	zr.codec = codec
	zr.dict = gd.NewDictionary(codec.cfg.IDBits)
	return nil
}

// Read implements io.Reader.
func (zr *Reader) Read(p []byte) (int, error) {
	if err := zr.start(); err != nil {
		return 0, err
	}
	for len(zr.out) == 0 {
		if zr.done {
			return 0, io.EOF
		}
		if err := zr.readBlock(); err != nil {
			return 0, err
		}
	}
	n := copy(p, zr.out)
	zr.out = zr.out[n:]
	return n, nil
}

func (zr *Reader) readBlock() error {
	var hdr [8]byte
	if _, err := io.ReadFull(zr.r, hdr[:]); err != nil {
		return fmt.Errorf("%w: block header: %v", ErrCorrupt, err)
	}
	byteLen := binary.LittleEndian.Uint32(hdr[0:])
	bitWord := binary.LittleEndian.Uint32(hdr[4:])
	if byteLen == 0 {
		zr.done = true
		return nil
	}
	if byteLen > 1<<24 {
		return fmt.Errorf("%w: block of %d bytes", ErrCorrupt, byteLen)
	}
	body := make([]byte, byteLen)
	if _, err := io.ReadFull(zr.r, body); err != nil {
		return fmt.Errorf("%w: block body: %v", ErrCorrupt, err)
	}
	if bitWord&tailBlockFlag != 0 {
		// Raw tail block.
		if len(body) < 3 || body[0] != 0xFF {
			return fmt.Errorf("%w: malformed tail block", ErrCorrupt)
		}
		n := int(binary.LittleEndian.Uint16(body[1:3]))
		if len(body) != 3+n {
			return fmt.Errorf("%w: tail length mismatch", ErrCorrupt)
		}
		zr.out = append(zr.out, body[3:]...)
		zr.Stats.TailBytes += uint64(n)
		return nil
	}
	bitLen := int(bitWord)
	if bitLen > len(body)*8 {
		return fmt.Errorf("%w: bit length exceeds block", ErrCorrupt)
	}
	return zr.decodeRecords(body, bitLen)
}

func (zr *Reader) decodeRecords(body []byte, bitLen int) error {
	br := bitvec.NewReaderBits(body, bitLen)
	m := zr.codec.DeviationBits()
	k := zr.codec.BasisBits()
	idBits := zr.codec.cfg.IDBits
	for br.Remaining() > 0 {
		hit, err := br.ReadBit()
		if err != nil {
			return fmt.Errorf("%w: truncated record", ErrCorrupt)
		}
		dev, err := br.ReadUint(m)
		if err != nil {
			return fmt.Errorf("%w: truncated deviation", ErrCorrupt)
		}
		extra, err := br.ReadUint(1)
		if err != nil {
			return fmt.Errorf("%w: truncated extra bit", ErrCorrupt)
		}
		var basis *bitvec.Vector
		if hit {
			id, err := br.ReadUint(idBits)
			if err != nil {
				return fmt.Errorf("%w: truncated identifier", ErrCorrupt)
			}
			b, ok := zr.dict.LookupID(uint32(id))
			if !ok {
				return fmt.Errorf("%w: unknown identifier %d", ErrCorrupt, id)
			}
			basis = b
			// Mirror the encoder's recency refresh.
			zr.dict.Lookup(basis)
			zr.Stats.Hits++
		} else {
			b, err := br.ReadVector(k)
			if err != nil {
				return fmt.Errorf("%w: truncated basis", ErrCorrupt)
			}
			zr.dict.Insert(b)
			basis = b
			zr.Stats.Misses++
		}
		zr.Stats.Chunks++
		out, err := zr.codec.inner.MergeChunk(gd.Split{
			Basis:     basis,
			Deviation: uint32(dev),
			Extra:     uint8(extra),
		}, zr.out)
		if err != nil {
			return fmt.Errorf("%w: %v", ErrCorrupt, err)
		}
		zr.out = out
	}
	return nil
}

// CompressBytes compresses data in one call.
func CompressBytes(data []byte, cfg Config) ([]byte, error) {
	var buf appendWriter
	zw, err := NewWriter(&buf, cfg)
	if err != nil {
		return nil, err
	}
	if _, err := zw.Write(data); err != nil {
		return nil, err
	}
	if err := zw.Close(); err != nil {
		return nil, err
	}
	return buf.b, nil
}

// DecompressBytes decompresses a stream produced by CompressBytes or
// Writer in one call.
func DecompressBytes(data []byte) ([]byte, error) {
	zr, err := NewReader(bytes.NewReader(data))
	if err != nil {
		return nil, err
	}
	var out []byte
	buf := make([]byte, 64<<10)
	for {
		n, err := zr.Read(buf)
		out = append(out, buf[:n]...)
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, err
		}
	}
}

type appendWriter struct{ b []byte }

func (w *appendWriter) Write(p []byte) (int, error) {
	w.b = append(w.b, p...)
	return len(p), nil
}
