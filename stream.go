package zipline

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sync"

	"zipline/internal/bitvec"
	"zipline/internal/gd"
)

// Stream container format (see DESIGN.md):
//
//	header:  "ZLGD" | version u8 | m u8 | idBits u8 | t u8
//	blocks:  u32le byteLen | u32le bitLen | payload
//	trailer: a block with byteLen == 0
//
// Each block carries bit-packed records that never straddle blocks:
//
//	tag 0 (1 bit)  miss: deviation(m) | extra(1) | basis(k)
//	tag 1 (1 bit)  hit:  deviation(m) | extra(1) | id(idBits)
//
// plus, only as the final record of the final data block,
//
//	tail marker: a miss/hit record cannot start with bitLen < 2, so a
//	block whose first byte is 0xFF after records end encodes the tail:
//	0xFF | u16le length | raw bytes.
//
// Misses insert the basis into an LRU dictionary; the decoder applies
// identical insertions and lookups, so identifier assignment evolves
// in lockstep on both sides without any side channel — the streaming
// analogue of the control-plane protocol.
//
// Version 2 is the parallel (sharded) container written when a Writer
// is configured with WithWorkers(n > 1). The 8-byte header above is
// followed by
//
//	u8 shards | u8 reserved ×3
//
// and blocks become 16-byte-headed groups, one per input segment:
//
//	u32le byteLen | u32le bitLen | u32le seq | u8 shard | u8 reserved ×3
//
// seq counts groups from zero; shard names the basis dictionary the
// group's records were encoded against (the encoder assigns segment
// seq to shard seq mod shards, and each shard's groups appear in the
// stream in that shard's encode order). A decoder keeps one
// dictionary per shard and replays each group against its recorded
// shard, so identifier assignment stays in lockstep per shard whether
// the groups are decoded serially or by per-shard workers. The tail
// marker and the all-zero trailer group work as in version 1. Record
// payloads are identical across versions.
//
// Version 3 is the dictionary-framed container written when a Writer
// is configured with WithDict. It uses the version-2 group framing
// (shards == 1 for a serial writer) but the second extension byte
// carries flags, and flagDict appends
//
//	u32le dictID | u32le dictBases
//
// identifying the shared pre-trained dictionary (Dict.ID / Dict.Len)
// whose bases occupy identifiers [0, dictBases) of every shard. A
// reader that was not handed the same Dict rejects the stream with
// ErrDictRequired or ErrDictMismatch instead of misdecoding.
//
// Version 4 is the seekable (indexed) container written under
// WithIndex. It uses the version-3 framing (flags may still include
// flagDict) plus flagIndex, and gives the fourteenth group-header byte
// meaning as per-group flags: groupFlagCheckpoint marks a group before
// which the encoder reset its basis dictionary to the frozen prefix,
// so a streaming decoder replays the reset in-band while an indexed
// decoder may start at the group cold. After the trailer group the
// writer appends the trailing index footer (see seekindex.go); readers
// that stop at the trailer never see it.
const (
	streamMagic = "ZLGD"
	streamV1    = 1 // serial container
	streamV2    = 2 // sharded container (WithWorkers > 1)
	streamV3    = 3 // dictionary-framed sharded container (WithDict)
	streamV4    = 4 // indexed/seekable container (WithIndex)
)

// flagDict marks a version ≥ 3 stream that records its pre-trained
// dictionary in the extended header; flagIndex marks a version-4
// stream carrying the trailing seek index.
const (
	flagDict  = 1 << 0
	flagIndex = 1 << 1
)

// groupFlagCheckpoint, in a version-4 group header's flags byte, marks
// a group encoded from a dictionary holding only the frozen prefix:
// the encoder reset its dynamic entries immediately before it.
const groupFlagCheckpoint = 1 << 0

// ErrCorrupt reports an undecodable stream.
var ErrCorrupt = errors.New("zipline: corrupt stream")

// ErrDictRequired reports a dictionary-framed stream offered to a
// Reader that holds no dictionary (pass the fleet's Dict via
// WithDict).
var ErrDictRequired = errors.New("zipline: stream requires a pre-trained dictionary")

// ErrDictMismatch reports a dictionary-framed stream whose recorded
// dictionary identity does not match the Reader's WithDict.
var ErrDictMismatch = errors.New("zipline: dictionary does not match stream")

// ErrNoIndex reports a Seek or ReadAt against a stream that carries no
// trailing index (it was not written with WithIndex).
var ErrNoIndex = errors.New("zipline: stream has no seek index")

// errReaderClosed poisons reads after Close.
var errReaderClosed = errors.New("zipline: reader closed")

// truncErr maps a mid-structure read failure to io.ErrUnexpectedEOF:
// a container that ends cleanly between frames surfaces io.EOF from
// the framing layer, but one cut inside a header, body, trailer or
// footer must never read as a clean end of stream.
func truncErr(err error) error {
	if err == io.EOF {
		return io.ErrUnexpectedEOF
	}
	return err
}

const (
	defaultBlockBytes = 64 << 10
	maxBlockBytes     = 1 << 24
	maxTailBytes      = 0xFFFF

	// maxPooledBlockLen caps the block-body scratch a Reader keeps
	// across blocks and Resets; larger (corrupt-header) bodies get a
	// throwaway buffer instead.
	maxPooledBlockLen = 1 << 20
)

// tailBlockFlag marks the bitLen word of a raw tail block.
const tailBlockFlag = 1 << 31

// blockEncoder is the reusable encode unit shared by the serial path
// and every parallel worker: it turns fixed-size chunks into
// bit-packed records against one basis dictionary (optionally seeded
// with a shared frozen Dict). The block and stats destinations are
// fields so a worker can repoint them at the current job while the
// dictionary persists across jobs.
type blockEncoder struct {
	codec *Codec
	dict  *gd.Dictionary
	block *bitvec.Writer
	stats *StreamStats
	split gd.Split // scratch reused across chunks

	// Hoisted from the codec at construction so the per-chunk record
	// loop reads two ints and a pointer instead of chasing the config
	// through method calls every chunk.
	inner  *gd.Codec
	m      int // deviation width, bits
	idBits int
}

func newBlockEncoder(codec *Codec, d *Dict) *blockEncoder {
	dict := newStreamDictionary(codec, d)
	return &blockEncoder{
		codec:  codec,
		dict:   dict,
		inner:  codec.inner,
		m:      codec.DeviationBits(),
		idBits: codec.cfg.IDBits,
	}
}

// newStreamDictionary builds the per-stream basis dictionary, seeded
// with the shared frozen prefix when a Dict is in play.
func newStreamDictionary(codec *Codec, d *Dict) *gd.Dictionary {
	if d != nil {
		return gd.NewDictionaryFrozen(codec.cfg.IDBits, d.frozen)
	}
	return gd.NewDictionary(codec.cfg.IDBits)
}

// encodeChunk appends one chunk's record to the current block.
//
//zipline:noalloc
func (e *blockEncoder) encodeChunk(chunk []byte) error {
	if err := e.inner.SplitChunkInto(chunk, &e.split); err != nil {
		return err
	}
	e.stats.Chunks++
	if id, ok := e.dict.Lookup(e.split.Basis); ok {
		e.block.WriteBit(true)
		e.block.WriteUint(uint64(e.split.Deviation), e.m)
		e.block.WriteUint(uint64(e.split.Extra), 1)
		e.block.WriteUint(uint64(id), e.idBits)
		e.stats.Hits++
	} else {
		e.dict.Insert(e.split.Basis)
		e.block.WriteBit(false)
		e.block.WriteUint(uint64(e.split.Deviation), e.m)
		e.block.WriteUint(uint64(e.split.Extra), 1)
		e.block.WriteVector(e.split.Basis)
		e.stats.Misses++
	}
	return nil
}

// blockDecoder is the matching decode unit: it replays one shard's
// record blocks against one basis dictionary, mirroring the encoder's
// insertions and recency refreshes.
type blockDecoder struct {
	codec *Codec
	dict  *gd.Dictionary
	stats *StreamStats
	br    bitvec.Reader // reused per block; live only inside decodeRecords
}

func newBlockDecoder(codec *Codec, stats *StreamStats, d *Dict) *blockDecoder {
	return &blockDecoder{codec: codec, dict: newStreamDictionary(codec, d), stats: stats}
}

// decodeRecords replays one block of records, appending the decoded
// bytes to out.
func (d *blockDecoder) decodeRecords(body []byte, bitLen int, out []byte) ([]byte, error) {
	br := &d.br
	br.ResetBits(body, bitLen)
	// body is borrowed scratch; drop the reference on every exit so the
	// decoder never pins a caller's buffer between blocks.
	defer br.ResetBits(nil, 0)
	m := d.codec.DeviationBits()
	k := d.codec.BasisBits()
	idBits := d.codec.cfg.IDBits
	for br.Remaining() > 0 {
		hit, err := br.ReadBit()
		if err != nil {
			return out, fmt.Errorf("%w: truncated record", ErrCorrupt)
		}
		dev, err := br.ReadUint(m)
		if err != nil {
			return out, fmt.Errorf("%w: truncated deviation", ErrCorrupt)
		}
		extra, err := br.ReadUint(1)
		if err != nil {
			return out, fmt.Errorf("%w: truncated extra bit", ErrCorrupt)
		}
		var basis *bitvec.Vector
		if hit {
			id, err := br.ReadUint(idBits)
			if err != nil {
				return out, fmt.Errorf("%w: truncated identifier", ErrCorrupt)
			}
			// Mirrors the encoder's lookup including its recency refresh.
			b, ok := d.dict.LookupIDTouch(uint32(id))
			if !ok {
				return out, fmt.Errorf("%w: unknown identifier %d", ErrCorrupt, id)
			}
			basis = b
			d.stats.Hits++
		} else {
			b, err := br.ReadVector(k)
			if err != nil {
				return out, fmt.Errorf("%w: truncated basis", ErrCorrupt)
			}
			d.dict.Insert(b)
			basis = b
			d.stats.Misses++
		}
		d.stats.Chunks++
		out, err = d.codec.inner.MergeChunk(gd.Split{
			Basis:     basis,
			Deviation: uint32(dev),
			Extra:     uint8(extra),
		}, out)
		if err != nil {
			return out, fmt.Errorf("%w: %v", ErrCorrupt, err)
		}
	}
	return out, nil
}

// parseTailBlock validates a raw tail block body and returns the tail
// bytes (aliasing body).
func parseTailBlock(body []byte) ([]byte, error) {
	if len(body) < 3 || body[0] != 0xFF {
		return nil, fmt.Errorf("%w: malformed tail block", ErrCorrupt)
	}
	n := int(binary.LittleEndian.Uint16(body[1:3]))
	if len(body) != 3+n {
		return nil, fmt.Errorf("%w: tail length mismatch", ErrCorrupt)
	}
	return body[3:], nil
}

// appendTailBlock encodes the tail body: 0xFF | u16le length | bytes.
func appendTailBlock(dst, tail []byte) []byte {
	dst = append(dst, 0xFF)
	dst = binary.LittleEndian.AppendUint16(dst, uint16(len(tail)))
	return append(dst, tail...)
}

// Writer compresses a byte stream with GD. One type serves every
// operating mode, selected by Options at construction:
//
//   - WithWorkers(1) (the default) encodes serially on the caller's
//     goroutine, buffering at most one chunk of input plus one output
//     block.
//   - WithWorkers(n > 1) fans input segments out to n workers with one
//     basis-dictionary shard each, emitting the version-2 container.
//   - WithDict shares a pre-trained basis dictionary across all shards
//     and records it in the (version-3) container.
//
// Close flushes the tail and the trailer; the stream is unreadable
// without it. A finished Writer can be handed a new stream with Reset,
// re-serving from a pool without re-allocating its dictionary, block
// buffer or (with a warm Dict) anything at all. Streaming methods must
// not be called concurrently; EncodeAll may be called from any number
// of goroutines at any time.
type Writer struct {
	w     io.Writer
	set   settings
	codec *Codec

	// Serial engine (workers == 1).
	enc       *blockEncoder
	pending   []byte // partial input chunk
	chunkSize int    // hoisted codec.ChunkSize()

	// Sharded engine (workers > 1), started lazily on first dispatch.
	par *parEngine

	grouped bool   // 16-byte group framing (v2+)
	seq     uint32 // next group sequence number (serial grouped path)

	// Trailing-index accumulation (WithIndex, serial only).
	idx     *writerIndex
	written int64 // compressed bytes emitted (writeOut)
	uncomp  int64 // uncompressed bytes consumed into groups

	wroteHeader bool
	closed      bool
	closeErr    error

	scratch [24]byte // header/trailer assembly, keeps flushes alloc-free

	ePool sync.Pool // pooled one-shot encoders for EncodeAll

	// Stats accumulate over the current stream (valid after Close for
	// workers > 1; Reset clears them). EncodeAll does not touch Stats.
	Stats StreamStats
}

// StreamStats counts records and bytes through a Writer or Reader.
type StreamStats struct {
	Chunks    uint64
	Hits      uint64
	Misses    uint64
	TailBytes uint64
}

// add accumulates o into s.
func (s *StreamStats) add(o StreamStats) {
	s.Chunks += o.Chunks
	s.Hits += o.Hits
	s.Misses += o.Misses
	s.TailBytes += o.TailBytes
}

// NewWriter builds a compressing writer. Options select the operating
// point (WithConfig), concurrency (WithWorkers) and shared dictionary
// (WithDict); a bare Config is accepted as an option for
// compatibility with the pre-options signature. w may be nil for a
// Writer used only through EncodeAll.
func NewWriter(w io.Writer, opts ...Option) (*Writer, error) {
	set, err := resolveOptions(opts)
	if err != nil {
		return nil, err
	}
	codec, err := NewCodec(set.cfg)
	if err != nil {
		return nil, err
	}
	set.cfg = codec.cfg
	if set.workers > 1 {
		if set.index {
			return nil, fmt.Errorf("zipline: WithIndex requires a serial writer — the index records one dictionary timeline, and decode-side parallelism comes from the index itself")
		}
		zw := &Writer{w: w, set: set, codec: codec, grouped: true}
		zw.par = newParEngine(codec, set)
		return zw, nil
	}
	return newSerialWriter(w, set, codec), nil
}

// newSerialWriter assembles the single-shard engine around an
// existing codec (shared by NewWriter and the EncodeAll pool).
func newSerialWriter(w io.Writer, set settings, codec *Codec) *Writer {
	zw := &Writer{w: w, set: set, codec: codec, grouped: set.dict != nil || set.index}
	zw.enc = newBlockEncoder(codec, set.dict)
	zw.enc.block = bitvec.NewWriter(defaultBlockBytes + 256)
	zw.enc.stats = &zw.Stats
	zw.chunkSize = codec.ChunkSize()
	if set.index {
		every := int64(set.indexEvery)
		if every == 0 {
			every = defaultCheckpointBytes
		}
		// Checkpoints land on chunk boundaries: round the interval up
		// to a whole chunk.
		if rem := every % int64(zw.chunkSize); rem != 0 {
			every += int64(zw.chunkSize) - rem
		}
		zw.idx = &writerIndex{every: every}
		zw.idx.reset()
	}
	return zw
}

// version returns the container version this writer emits.
func (zw *Writer) version() uint8 {
	switch {
	case zw.set.index:
		return streamV4
	case zw.set.dict != nil:
		return streamV3
	case zw.set.workers > 1:
		return streamV2
	default:
		return streamV1
	}
}

// Reset discards the current stream state and directs the writer at a
// new destination, keeping every allocation: the basis dictionary
// (cleared back to its frozen prefix), the block buffer, and — for
// workers > 1 — the segment and block pools. A pooled Writer re-serves
// short streams with zero steady-state allocations when its
// dictionary is warm.
//
//zipline:noalloc
func (zw *Writer) Reset(w io.Writer) {
	if zw.par != nil {
		zw.par.reset()
	}
	zw.w = w
	zw.pending = zw.pending[:0]
	zw.seq = 0
	zw.written, zw.uncomp = 0, 0
	zw.wroteHeader, zw.closed = false, false
	zw.closeErr = nil
	zw.Stats = StreamStats{}
	if zw.enc != nil {
		zw.enc.block.Reset()
		zw.enc.dict.Reset()
	}
	if zw.idx != nil {
		zw.idx.reset()
	}
}

// Write implements io.Writer.
func (zw *Writer) Write(p []byte) (int, error) {
	if zw.closed {
		return 0, fmt.Errorf("zipline: write after Close")
	}
	if zw.w == nil {
		return 0, fmt.Errorf("zipline: Writer has no destination (NewWriter(nil, ...) serves EncodeAll only)")
	}
	if zw.par != nil {
		return zw.parWrite(p)
	}
	if err := zw.writeHeader(); err != nil {
		return 0, err
	}
	n := len(p)
	cs := zw.chunkSize
	// Drain the pending partial chunk first.
	if len(zw.pending) > 0 {
		need := cs - len(zw.pending)
		if need > len(p) {
			zw.pending = append(zw.pending, p...)
			return n, nil
		}
		zw.pending = append(zw.pending, p[:need]...)
		p = p[need:]
		if err := zw.encodeChunk(zw.pending); err != nil {
			return 0, err
		}
		zw.pending = zw.pending[:0]
	}
	for len(p) >= cs {
		if err := zw.encodeChunk(p[:cs]); err != nil {
			return 0, err
		}
		p = p[cs:]
	}
	zw.pending = append(zw.pending, p...)
	return n, nil
}

// Flush writes every buffered complete-chunk record through to the
// destination as one container block, so a streaming peer can decode
// the data written so far without waiting for Close — the primitive
// the ziphttp gateway's http.Flusher path and the zipline-proxy
// per-segment forwarding are built on. Bytes of a trailing partial
// chunk (fewer than the codec's ChunkSize) stay pending until further
// input completes the chunk or Close emits them as the raw tail: the
// container carries records at chunk granularity, so a mid-stream
// flush cannot move them. Flushing before any input still forces the
// stream header out. Flush requires the serial engine
// (WithWorkers(1)); the sharded writer buffers per worker and returns
// an error. On an indexed (WithIndex) writer every flushed block is
// recorded in the trailing index as usual.
func (zw *Writer) Flush() error {
	if zw.closed {
		return fmt.Errorf("zipline: flush after Close")
	}
	if zw.w == nil {
		return fmt.Errorf("zipline: Writer has no destination (NewWriter(nil, ...) serves EncodeAll only)")
	}
	if zw.par != nil {
		return fmt.Errorf("zipline: Flush requires the serial writer (WithWorkers(1))")
	}
	if err := zw.writeHeader(); err != nil {
		return err
	}
	return zw.flushBlock()
}

// writeHeader emits the container header (with the v2/v3 extension
// and dict frame as configured) from the writer's scratch, so the
// steady-state pooled path allocates nothing.
func (zw *Writer) writeHeader() error {
	if zw.wroteHeader {
		return nil
	}
	zw.wroteHeader = true
	cfg := zw.codec.cfg
	b := append(zw.scratch[:0], streamMagic...)
	b = append(b, zw.version(), byte(cfg.M), byte(cfg.IDBits), byte(cfg.T))
	if zw.grouped {
		shards := 1
		if zw.par != nil {
			shards = zw.par.shards
		}
		var flags byte
		if zw.set.dict != nil {
			flags |= flagDict
		}
		if zw.set.index {
			flags |= flagIndex
		}
		b = append(b, byte(shards), flags, 0, 0)
		if zw.set.dict != nil {
			b = binary.LittleEndian.AppendUint32(b, zw.set.dict.id)
			b = binary.LittleEndian.AppendUint32(b, uint32(zw.set.dict.Len()))
		}
	}
	return zw.writeOut(b)
}

// writeOut forwards b to the destination, tracking the compressed
// offset the trailing index records.
//
//zipline:noalloc
func (zw *Writer) writeOut(b []byte) error {
	n, err := zw.w.Write(b)
	zw.written += int64(n)
	return err
}

//zipline:noalloc
func (zw *Writer) encodeChunk(chunk []byte) error {
	if zw.idx != nil {
		if zw.uncomp >= zw.idx.nextCkpt {
			// Checkpoint: close the current group and reset the basis
			// dictionary to the frozen prefix, so the group starting
			// with this chunk is decodable cold from the index.
			if err := zw.flushBlock(); err != nil {
				return err
			}
			zw.enc.dict.Reset()
			zw.idx.pending = true
			zw.idx.nextCkpt = zw.uncomp + zw.idx.every
		}
		if zw.enc.block.Len() == 0 {
			zw.idx.groupStart = zw.uncomp
		}
	}
	if err := zw.enc.encodeChunk(chunk); err != nil {
		return err
	}
	zw.uncomp += int64(len(chunk))
	if len(zw.enc.block.Bytes()) >= defaultBlockBytes {
		return zw.flushBlock()
	}
	return nil
}

// blockHeader assembles a block (v1) or group (v2+) header in the
// writer's scratch, consuming a sequence number in grouped mode.
// gflags fills the version-4 group-flags byte (zero elsewhere).
func (zw *Writer) blockHeader(byteLen, bitWord uint32, gflags byte) []byte {
	binary.LittleEndian.PutUint32(zw.scratch[0:], byteLen)
	binary.LittleEndian.PutUint32(zw.scratch[4:], bitWord)
	if !zw.grouped {
		return zw.scratch[:8]
	}
	binary.LittleEndian.PutUint32(zw.scratch[8:], zw.seq)
	zw.seq++
	zw.scratch[12], zw.scratch[13], zw.scratch[14], zw.scratch[15] = 0, gflags, 0, 0
	return zw.scratch[:16]
}

//zipline:noalloc
func (zw *Writer) flushBlock() error {
	block := zw.enc.block
	if block.Len() == 0 {
		return nil
	}
	var gflags byte
	if zw.idx != nil {
		gflags = zw.idx.record(zw.written, zw.idx.groupStart)
	}
	hdr := zw.blockHeader(uint32(len(block.Bytes())), uint32(block.Len()), gflags)
	if err := zw.writeOut(hdr); err != nil {
		return err
	}
	if err := zw.writeOut(block.Bytes()); err != nil {
		return err
	}
	block.Reset()
	return nil
}

// Close flushes buffered records, the input tail and the stream
// trailer. It does not close the underlying writer. Close is
// idempotent: repeated calls return the first close error, so a
// deferred Close after an unchecked explicit one cannot report
// success on a truncated stream.
func (zw *Writer) Close() error {
	if zw.closed {
		return zw.closeErr
	}
	zw.closed = true
	if zw.w == nil {
		return nil // EncodeAll-only writer, nothing buffered
	}
	if zw.par != nil {
		zw.closeErr = zw.parClose()
	} else {
		zw.closeErr = zw.closeSerial()
	}
	return zw.closeErr
}

func (zw *Writer) closeSerial() error {
	if err := zw.writeHeader(); err != nil {
		return err
	}
	if err := zw.flushBlock(); err != nil {
		return err
	}
	// Tail block: raw trailing bytes that did not fill a chunk.
	if len(zw.pending) > 0 {
		if len(zw.pending) > maxTailBytes {
			return fmt.Errorf("zipline: tail of %d bytes exceeds format limit", len(zw.pending))
		}
		zw.Stats.TailBytes = uint64(len(zw.pending))
		var gflags byte
		if zw.idx != nil {
			// The raw tail needs no dictionary state, so it is always
			// its own checkpoint: Seek can jump straight into it.
			zw.idx.pending = true
			gflags = zw.idx.record(zw.written, zw.uncomp)
		}
		body := appendTailBlock(make([]byte, 0, 3+len(zw.pending)), zw.pending)
		hdr := zw.blockHeader(uint32(len(body)), uint32(len(body)*8)|tailBlockFlag, gflags)
		if err := zw.writeOut(hdr); err != nil {
			return err
		}
		if err := zw.writeOut(body); err != nil {
			return err
		}
		zw.uncomp += int64(len(zw.pending))
	}
	trailerOff := zw.written
	if err := zw.writeTrailer(); err != nil {
		return err
	}
	if zw.idx == nil {
		return nil
	}
	ix := streamIndex{
		uncompTotal: uint64(zw.uncomp),
		trailerOff:  uint64(trailerOff),
		groups:      zw.idx.groups,
		checkpoints: zw.idx.ckpts,
	}
	if zw.set.dict != nil {
		ix.watermark = uint32(zw.set.dict.Len())
	}
	return zw.writeOut(ix.appendFooter(nil))
}

// writeTrailer emits the all-zero end-of-stream block/group.
func (zw *Writer) writeTrailer() error {
	n := 8
	if zw.grouped {
		n = 16
	}
	for i := 0; i < n; i++ {
		zw.scratch[i] = 0
	}
	return zw.writeOut(zw.scratch[:n])
}

// Reader decompresses a stream produced by any Writer configuration —
// it understands all four container versions, following the stream's
// recorded shard count and dictionary identity. It implements
// io.Reader. With WithWorkers(n > 1), sharded streams are decoded by
// one worker per shard; Close then releases those workers without
// draining the stream. Like Writer, a Reader can be pooled: Reset
// points it at a new stream and, on the serial decode path, reuses
// its shard decoders (dictionaries included) whenever the next header
// matches the last; the parallel engine is rebuilt per stream.
// Streaming methods must not be called concurrently; DecodeAll may be
// called from any number of goroutines.
type Reader struct {
	r   io.Reader
	set settings

	codec      *Codec
	version    uint8
	shards     int
	grouped    bool
	streamDict *Dict // set.dict, when the stream records it

	decs     []*blockDecoder // one per shard (serial decode path)
	decCodec *Codec          // codec decs were built against (Reset reuse)
	decDict  *Dict           // dict decs were built against (Reset reuse)
	nextSeq  uint32

	par *parReader // per-shard decode workers (workers > 1)
	ixr *idxReader // index-segment decode workers (workers > 1, indexed stream)

	// Random-access state, live when the source is an io.ReadSeeker.
	seeker   io.ReadSeeker
	origin   int64 // underlying offset of the container's first byte
	pos      int64 // uncompressed read position (Seek/ReadAt)
	hasIndex bool  // header advertised flagIndex
	idx      *streamIndex

	out     []byte   // decoded bytes not yet read
	outBuf  []byte   // recycled backing array for out (streaming Read path)
	blkBuf  []byte   // recycled block-body scratch (serial decode path)
	hdrBuf  [16]byte // header scratch (serial decode path)
	done    bool
	started bool
	err     error // sticky: decode failure, io.EOF, or errReaderClosed

	dPool sync.Pool // pooled one-shot decoders for DecodeAll
	iPool sync.Pool // pooled fan-out decode states for indexed DecodeAll

	// Stats accumulate over the reader's lifetime (for workers > 1,
	// valid once Read has returned io.EOF). DecodeAll does not touch
	// Stats.
	Stats StreamStats
}

// NewReader opens a compressed stream, reading and validating its
// header lazily on first Read. Options: WithWorkers enables
// concurrent shard decoding, WithDict supplies the shared dictionary
// a version-3 stream requires. r may be nil for a Reader used only
// through DecodeAll.
func NewReader(r io.Reader, opts ...Option) (*Reader, error) {
	set, err := resolveOptions(opts)
	if err != nil {
		return nil, err
	}
	return &Reader{r: r, set: set}, nil
}

// Reset discards the current stream state and directs the reader at a
// new stream. On the serial decode path, shard decoders (and their
// dictionaries) are kept and reused when the next stream's header
// matches the last one, so a pooled Reader re-serves
// same-configuration streams without rebuilding its dictionaries.
//
// After Close or Reset of a partially consumed workers > 1 stream,
// the released pump goroutine may still be blocked in a read on the
// old source (Go cannot interrupt a blocking Read); its read position
// is then undefined, so do not hand that same source's remaining
// bytes to another reader. Fully drained streams, and any in-memory
// or file source, are unaffected.
//
//zipline:noalloc
func (zr *Reader) Reset(r io.Reader) {
	if zr.par != nil {
		zr.par.release()
		zr.par = nil
	}
	if zr.ixr != nil {
		zr.ixr.release()
		zr.ixr = nil
	}
	zr.r = r
	zr.version, zr.shards = 0, 0
	zr.grouped = false
	zr.streamDict = nil
	zr.nextSeq = 0
	zr.seeker, zr.origin, zr.pos = nil, 0, 0
	zr.hasIndex, zr.idx = false, nil
	zr.out = nil
	zr.done, zr.started = false, false
	zr.err = nil
	zr.Stats = StreamStats{}
}

func (zr *Reader) start() error {
	if zr.started {
		return nil
	}
	zr.started = true
	if zr.r == nil {
		return fmt.Errorf("zipline: Reader has no source (NewReader(nil, ...) serves DecodeAll only)")
	}
	if sk, ok := zr.r.(io.ReadSeeker); ok {
		// Remember where the container starts in a seekable source, so
		// Seek and the indexed fan-out can address it absolutely.
		if off, err := sk.Seek(0, io.SeekCurrent); err == nil {
			zr.seeker, zr.origin = sk, off
		}
	}
	info, err := parseStreamHeader(zr.r, zr.codec, &zr.hdrBuf)
	if err != nil {
		return err
	}
	dict, err := validateStreamDict(info, zr.set.dict)
	if err != nil {
		return err
	}
	zr.codec = info.codec
	zr.version, zr.shards, zr.grouped = info.version, info.shards, info.grouped
	zr.streamDict = dict
	zr.hasIndex = info.hasIndex
	if zr.set.workers > 1 && info.shards > 1 && info.grouped && info.version < streamV4 {
		// Concurrent decode: the parReader workers own their decoders;
		// the serial slice stays untouched for a later serial stream.
		// Version-4 streams are excluded: our writer only indexes
		// single-shard streams, and the shard workers do not replay
		// checkpoint resets — a forged multi-shard v4 container must
		// decode identically on every path, so it takes the serial one.
		zr.par = newParReader(zr)
		return nil
	}
	if zr.set.workers > 1 && info.hasIndex && info.shards == 1 {
		// Indexed fan-out: decode checkpoint segments concurrently. A
		// non-seekable or single-segment source falls through to the
		// serial path; a corrupt footer is an error — the index is the
		// thing the caller's workers would trust.
		ixr, err := newIdxReader(zr)
		if err != nil {
			return err
		}
		if ixr != nil {
			zr.ixr = ixr
			return nil
		}
	}
	// Serial decode. Shard decoders are created lazily on first use;
	// together with insert-proportional Dictionary sizing this keeps
	// decoder memory tied to real stream content, not to the
	// attacker-controlled shards and idBits header bytes. A pooled
	// Reset keeps the previous stream's decoders when the header
	// matches.
	if zr.decCodec != nil && zr.decCodec.cfg == info.codec.cfg && len(zr.decs) == info.shards && zr.decDict == dict {
		for _, dec := range zr.decs {
			if dec != nil {
				dec.dict.Reset()
			}
		}
	} else {
		zr.decCodec = info.codec
		zr.decs = make([]*blockDecoder, info.shards)
		zr.decDict = dict
	}
	return nil
}

// headerInfo is a parsed container header.
type headerInfo struct {
	version  uint8
	codec    *Codec
	shards   int
	grouped  bool
	hasDict  bool
	hasIndex bool
	dictID   uint32
	dictLen  uint32
}

// validateStreamDict cross-checks a dictionary-framed header against
// the dictionary the Reader holds, returning the dictionary decoding
// should use (nil for undictionaried streams). Every decode path —
// streaming, DecodeAll, indexed fan-out — applies this one rule.
func validateStreamDict(info headerInfo, d *Dict) (*Dict, error) {
	if !info.hasDict {
		return nil, nil
	}
	if d == nil {
		return nil, fmt.Errorf("%w: stream was encoded against dictionary %#08x (%d bases)",
			ErrDictRequired, info.dictID, info.dictLen)
	}
	if d.id != info.dictID || uint32(d.Len()) != info.dictLen || d.cfg != info.codec.cfg {
		return nil, fmt.Errorf("%w: stream wants %#08x (%d bases), holding %#08x (%d bases)",
			ErrDictMismatch, info.dictID, info.dictLen, d.id, d.Len())
	}
	return d, nil
}

// parseStreamHeader reads and validates the container header — magic,
// version, codec configuration, (v2/v3) shard count and (v3) dict
// identity. It is the single authority every decode path opens
// streams with, so serial and parallel decoders accept exactly the
// same headers. prev, when non-nil and matching the header's
// configuration, is reused instead of building a fresh codec — the
// pooled-reader steady state skips the transform-table setup. scratch
// is caller-owned header scratch (same hoisting as readBlockHeader).
func parseStreamHeader(r io.Reader, prev *Codec, scratch *[16]byte) (headerInfo, error) {
	var info headerInfo
	hdr := scratch[:8]
	if _, err := io.ReadFull(r, hdr); err != nil {
		return info, fmt.Errorf("%w: header: %w", ErrCorrupt, truncErr(err))
	}
	if string(hdr[:4]) != streamMagic {
		return info, fmt.Errorf("%w: bad magic %q", ErrCorrupt, hdr[:4])
	}
	info.version = hdr[4]
	if info.version < streamV1 || info.version > streamV4 {
		return info, fmt.Errorf("%w: unsupported version %d", ErrCorrupt, info.version)
	}
	cfg := Config{M: int(hdr[5]), IDBits: int(hdr[6]), T: int(hdr[7])}
	if prev != nil && prev.cfg == cfg {
		info.codec = prev
	} else {
		codec, cerr := NewCodec(cfg)
		if cerr != nil {
			return info, fmt.Errorf("%w: %v", ErrCorrupt, cerr)
		}
		info.codec = codec
	}
	codec := info.codec
	info.shards = 1
	if info.version >= streamV2 {
		info.grouped = true
		ext := scratch[8:12]
		if _, err := io.ReadFull(r, ext); err != nil {
			return info, fmt.Errorf("%w: extended header: %w", ErrCorrupt, truncErr(err))
		}
		info.shards = int(ext[0])
		if info.shards == 0 {
			return info, fmt.Errorf("%w: zero shards", ErrCorrupt)
		}
		if info.version >= streamV3 {
			flags := ext[1]
			valid := byte(flagDict)
			if info.version >= streamV4 {
				valid |= flagIndex
			}
			if flags&^valid != 0 {
				return info, fmt.Errorf("%w: unknown header flags %#02x", ErrCorrupt, flags)
			}
			info.hasIndex = flags&flagIndex != 0
			if flags&flagDict != 0 {
				// The fixed header's bytes are fully consumed above, so
				// its scratch half is free again for the dict frame.
				df := scratch[:8]
				if _, err := io.ReadFull(r, df); err != nil {
					return info, fmt.Errorf("%w: dictionary frame: %w", ErrCorrupt, truncErr(err))
				}
				info.hasDict = true
				info.dictID = binary.LittleEndian.Uint32(df[0:])
				info.dictLen = binary.LittleEndian.Uint32(df[4:])
				if info.dictLen == 0 || info.dictLen >= 1<<codec.cfg.IDBits {
					return info, fmt.Errorf("%w: dictionary of %d bases does not fit %d-bit identifiers",
						ErrCorrupt, info.dictLen, codec.cfg.IDBits)
				}
			}
		}
	}
	return info, nil
}

// Read implements io.Reader.
func (zr *Reader) Read(p []byte) (int, error) {
	if zr.err != nil {
		return 0, zr.err
	}
	if err := zr.start(); err != nil {
		zr.err = err
		return 0, err
	}
	if zr.par != nil {
		n, err := zr.par.read(zr, p)
		zr.pos += int64(n)
		return n, err
	}
	if zr.ixr != nil {
		n, err := zr.ixr.read(zr, p)
		zr.pos += int64(n)
		return n, err
	}
	for len(zr.out) == 0 {
		if zr.done {
			zr.err = io.EOF
			return 0, io.EOF
		}
		// The previous block's output has been fully copied out; decode
		// the next one into the same backing array so the streaming
		// steady state allocates nothing.
		zr.out = zr.outBuf[:0]
		if err := zr.readBlock(); err != nil {
			zr.err = err
			return 0, err
		}
		zr.outBuf = zr.out
	}
	n := copy(p, zr.out)
	zr.out = zr.out[n:]
	zr.pos += int64(n)
	return n, nil
}

// Seek implements io.Seeker over the uncompressed stream. It requires
// an indexed container (WithIndex) on an io.ReadSeeker source and the
// serial decode path (workers == 1): the reader jumps to the last
// dictionary checkpoint at or before the target and replays forward,
// discarding until the offset — so a seek costs at most one checkpoint
// interval of decoding. Seeking clears a prior io.EOF; after a seek,
// Stats no longer describe a single linear pass. A non-indexed stream
// returns ErrNoIndex.
func (zr *Reader) Seek(offset int64, whence int) (int64, error) {
	if zr.err != nil && zr.err != io.EOF {
		return 0, zr.err
	}
	zr.err = nil
	if err := zr.start(); err != nil {
		zr.err = err
		return 0, err
	}
	if zr.par != nil || zr.ixr != nil {
		return 0, fmt.Errorf("zipline: Seek requires the serial decode path (WithWorkers(1))")
	}
	if zr.seeker == nil {
		return 0, fmt.Errorf("zipline: Seek requires an io.ReadSeeker source")
	}
	if !zr.hasIndex {
		return 0, ErrNoIndex
	}
	if zr.idx == nil {
		ix, err := readIndexFooter(zr.seeker, zr.origin)
		if err != nil {
			zr.err = err
			return 0, err
		}
		zr.idx = ix
	}
	var target int64
	switch whence {
	case io.SeekStart:
		target = offset
	case io.SeekCurrent:
		target = zr.pos + offset
	case io.SeekEnd:
		target = int64(zr.idx.uncompTotal) + offset
	default:
		return 0, fmt.Errorf("zipline: invalid whence %d", whence)
	}
	if target < 0 || target > int64(zr.idx.uncompTotal) {
		return 0, fmt.Errorf("zipline: Seek to %d outside a stream of %d bytes", target, zr.idx.uncompTotal)
	}
	if err := zr.seekTo(uint64(target)); err != nil {
		zr.err = err
		return 0, err
	}
	zr.pos = target
	return target, nil
}

// seekTo repositions the decode state at uncompressed offset target:
// jump the source to the governing checkpoint's group, reset the
// basis dictionary to the frozen prefix, and decode-and-discard up to
// the target.
func (zr *Reader) seekTo(target uint64) error {
	ckGroup, g, ok := zr.idx.checkpointAtOrBefore(target)
	off, seq, pos := int64(zr.idx.trailerOff), uint32(len(zr.idx.groups)), zr.idx.uncompTotal
	if ok && target < zr.idx.uncompTotal {
		off, seq, pos = int64(g.compOff), ckGroup, g.uncompOff
	}
	if _, err := zr.seeker.Seek(zr.origin+off, io.SeekStart); err != nil {
		return err
	}
	zr.nextSeq = seq
	zr.done = false
	zr.out = nil
	if len(zr.decs) > 0 && zr.decs[0] != nil {
		zr.decs[0].dict.Reset()
	}
	for pos < target {
		if len(zr.out) > 0 {
			skip := uint64(len(zr.out))
			if skip > target-pos {
				skip = target - pos
			}
			zr.out = zr.out[skip:]
			pos += skip
			continue
		}
		if zr.done {
			return fmt.Errorf("%w: stream ends at %d before seek target %d", ErrCorrupt, pos, target)
		}
		if err := zr.readBlock(); err != nil {
			return err
		}
	}
	return nil
}

// ReadAt serves HTTP-range-style random access over the uncompressed
// stream of an indexed container. Unlike the io.ReaderAt contract it
// shares the Reader's streaming state: calls must not run concurrently
// with Read, Seek or each other, and the read position moves to the
// end of the range. Fewer than len(p) bytes are returned only at the
// end of the stream, with io.EOF.
func (zr *Reader) ReadAt(p []byte, off int64) (int, error) {
	if _, err := zr.Seek(off, io.SeekStart); err != nil {
		return 0, err
	}
	n := 0
	for n < len(p) {
		m, err := zr.Read(p[n:])
		n += m
		if err != nil {
			return n, err
		}
	}
	return n, nil
}

// Close releases the reader's resources — for workers > 1 its decode
// goroutines, without consuming the rest of the stream — and poisons
// further reads. It never fails; the error return satisfies
// io.ReadCloser. See Reset for the state of a partially consumed
// source after an early Close.
func (zr *Reader) Close() error {
	if zr.par != nil {
		zr.par.release()
	}
	if zr.ixr != nil {
		zr.ixr.release()
	}
	if zr.err == nil {
		zr.err = errReaderClosed
	}
	return nil
}

func (zr *Reader) readBlock() error {
	byteLen, bitWord, shard, gflags, err := readBlockHeader(zr.r, zr.version, &zr.nextSeq, &zr.hdrBuf)
	if err != nil {
		return err
	}
	if byteLen == 0 {
		if zr.hasIndex {
			// The header promised a trailing index: consume and verify
			// it, so a container cut after the trailer can never read
			// as a clean end of stream.
			if _, err := consumeIndexFooter(zr.r); err != nil {
				return err
			}
		}
		zr.done = true
		return nil
	}
	// Block bodies are transient — every downstream consumer copies
	// what it keeps (parseTailBlock's slice is appended to out,
	// ReadVector builds fresh vectors) — so one recycled scratch buffer
	// serves every block. Oversized lengths (only a corrupt or hostile
	// header produces them; real groups are bounded by the segment
	// size) use a throwaway allocation instead, so a pooled Reader
	// never pins a huge buffer.
	var body []byte
	if byteLen <= maxPooledBlockLen {
		if cap(zr.blkBuf) < int(byteLen) {
			zr.blkBuf = make([]byte, byteLen)
		}
		body = zr.blkBuf[:byteLen]
	} else {
		body = make([]byte, byteLen)
	}
	if _, err := io.ReadFull(zr.r, body); err != nil {
		return fmt.Errorf("%w: block body: %w", ErrCorrupt, truncErr(err))
	}
	tail, isTail, err := classifyGroup(bitWord, shard, len(zr.decs), body)
	if err != nil {
		return err
	}
	if gflags&groupFlagCheckpoint != 0 {
		// The encoder reset its dictionary to the frozen prefix before
		// this group; replay the reset to stay in lockstep.
		if !isTail && zr.decs[shard] != nil {
			zr.decs[shard].dict.Reset()
		}
	}
	if isTail {
		zr.out = append(zr.out, tail...)
		zr.Stats.TailBytes += uint64(len(tail))
		return nil
	}
	if zr.decs[shard] == nil {
		zr.decs[shard] = newBlockDecoder(zr.codec, &zr.Stats, zr.streamDict)
	}
	zr.out, err = zr.decs[shard].decodeRecords(body, int(bitWord), zr.out)
	return err
}

// decodeAllInto drains the whole stream, appending decoded bytes to
// dst — the one-shot engine behind DecodeAll. On error dst is
// returned unextended.
func (zr *Reader) decodeAllInto(dst []byte) ([]byte, error) {
	if err := zr.start(); err != nil {
		return dst, err
	}
	zr.out = dst
	for !zr.done {
		if err := zr.readBlock(); err != nil {
			zr.out = nil
			return dst, err
		}
	}
	out := zr.out
	zr.out = nil
	return out, nil
}

// classifyGroup applies the shared accept rules for a group body in
// any container version: tail groups are validated and their bytes
// returned (aliasing body); record groups get their shard and bit
// length bounds checked. Keeping one validator means the serial and
// parallel decoders accept exactly the same streams.
func classifyGroup(bitWord uint32, shard uint8, shards int, body []byte) (tail []byte, isTail bool, err error) {
	if bitWord&tailBlockFlag != 0 {
		t, err := parseTailBlock(body)
		return t, true, err
	}
	if int(shard) >= shards {
		return nil, false, fmt.Errorf("%w: shard %d of %d", ErrCorrupt, shard, shards)
	}
	if int(bitWord) > len(body)*8 {
		return nil, false, fmt.Errorf("%w: bit length exceeds block", ErrCorrupt)
	}
	return nil, false, nil
}

// readBlockHeader reads and validates one block (v1) or group (v2+)
// header for the given container version, returning the payload
// length, the bit-length word, the shard and — in version 4 — the
// group flags. nextSeq tracks the expected sequence number of grouped
// containers. A header cut short surfaces as ErrCorrupt wrapping
// io.ErrUnexpectedEOF, never as a clean end of stream. hdr is
// caller-owned scratch, hoisted out so reading through the io.Reader
// interface does not force a heap allocation per block.
func readBlockHeader(r io.Reader, version uint8, nextSeq *uint32, hdr *[16]byte) (byteLen, bitWord uint32, shard uint8, gflags byte, err error) {
	n := 8
	if version >= streamV2 {
		n = 16
	}
	if _, err := io.ReadFull(r, hdr[:n]); err != nil {
		return 0, 0, 0, 0, fmt.Errorf("%w: block header: %w", ErrCorrupt, truncErr(err))
	}
	byteLen = binary.LittleEndian.Uint32(hdr[0:])
	bitWord = binary.LittleEndian.Uint32(hdr[4:])
	if version >= streamV2 {
		if byteLen == 0 {
			return 0, 0, 0, 0, nil
		}
		seq := binary.LittleEndian.Uint32(hdr[8:])
		if seq != *nextSeq {
			return 0, 0, 0, 0, fmt.Errorf("%w: group %d out of order (want %d)", ErrCorrupt, seq, *nextSeq)
		}
		*nextSeq++
		shard = hdr[12]
		if version >= streamV4 {
			gflags = hdr[13]
			if gflags&^byte(groupFlagCheckpoint) != 0 {
				return 0, 0, 0, 0, fmt.Errorf("%w: unknown group flags %#02x", ErrCorrupt, gflags)
			}
		}
	}
	if byteLen > maxBlockBytes {
		return 0, 0, 0, 0, fmt.Errorf("%w: block of %d bytes", ErrCorrupt, byteLen)
	}
	return byteLen, bitWord, shard, gflags, nil
}

// CompressBytes compresses data in one call through the serial path.
// For repeated one-shot encodes, a pooled (*Writer).EncodeAll avoids
// the per-call setup.
func CompressBytes(data []byte, cfg Config) ([]byte, error) {
	var buf appendWriter
	zw, err := NewWriter(&buf, cfg)
	if err != nil {
		return nil, err
	}
	if _, err := zw.Write(data); err != nil {
		return nil, err
	}
	if err := zw.Close(); err != nil {
		return nil, err
	}
	return buf.b, nil
}

// DecompressBytes decompresses a stream produced by any Writer
// configuration in one call. For repeated one-shot decodes, a pooled
// (*Reader).DecodeAll avoids the per-call setup. Dictionary-framed
// streams need a Reader carrying the Dict (WithDict) instead.
func DecompressBytes(data []byte) ([]byte, error) {
	zr, err := NewReader(bytes.NewReader(data))
	if err != nil {
		return nil, err
	}
	var out []byte
	buf := make([]byte, 64<<10)
	for {
		n, err := zr.Read(buf)
		out = append(out, buf[:n]...)
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, err
		}
	}
}

type appendWriter struct{ b []byte }

func (w *appendWriter) Write(p []byte) (int, error) {
	w.b = append(w.b, p...)
	return len(p), nil
}
