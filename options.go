package zipline

import (
	"fmt"
	"runtime"
)

// Option configures a Writer or a Reader at construction:
//
//	zw, err := zipline.NewWriter(w, zipline.WithConfig(cfg), zipline.WithWorkers(8))
//	zr, err := zipline.NewReader(r, zipline.WithDict(dict))
//
// A bare Config is itself an Option (see Config.applyOption), so the
// pre-options call form NewWriter(w, cfg) keeps compiling unchanged.
type Option interface {
	applyOption(*settings) error
}

// settings is the resolved option state shared by Writer and Reader.
type settings struct {
	cfg        Config
	cfgSet     bool
	workers    int
	dict       *Dict
	index      bool
	indexEvery int
}

type optionFunc func(*settings) error

func (f optionFunc) applyOption(s *settings) error { return f(s) }

// applyOption lets a bare Config be passed where an Option is
// expected: NewWriter(w, cfg) is NewWriter(w, WithConfig(cfg)).
func (c Config) applyOption(s *settings) error {
	s.cfg, s.cfgSet = c, true
	return nil
}

// WithConfig selects the GD operating point (the zero Config is the
// paper's deployment). Writers record the configuration in the stream
// header; Readers always follow the header, so the option only serves
// to cross-check a WithDict configuration there.
func WithConfig(cfg Config) Option { return cfg }

// WithWorkers sets the encode (Writer) or decode (Reader) concurrency.
// 1 — the default — is the serial path; n > 1 selects the sharded
// parallel engine with one basis-dictionary shard per worker (capped
// at 255, the widest shard count the container records); 0 means
// GOMAXPROCS. A parallel Reader still follows the stream's shard
// count — workers only enable concurrent shard decoding.
func WithWorkers(n int) Option {
	return optionFunc(func(s *settings) error {
		if n < 0 {
			return fmt.Errorf("zipline: workers %d out of range (0 = all CPUs, 1 = serial, ≤%d)", n, maxShards)
		}
		if n == 0 {
			n = runtime.GOMAXPROCS(0)
		}
		if n > maxShards {
			n = maxShards
		}
		s.workers = n
		return nil
	})
}

// WithDict attaches a shared pre-trained dictionary (see TrainDict):
// the frozen bases are available to every encoder shard from the
// first chunk, and the container records the dictionary's identity so
// Readers can verify they hold the same one. A nil dict clears the
// option. The dictionary fixes the configuration; combining WithDict
// with a conflicting WithConfig is an error.
func WithDict(d *Dict) Option {
	return optionFunc(func(s *settings) error {
		s.dict = d
		return nil
	})
}

// WithIndex makes a Writer emit the version-4 seekable container: a
// magic-framed, CRC-protected footer of group offsets and
// dictionary-state checkpoints appended after the stream trailer,
// where pre-index readers never look. checkpointBytes sets the
// uncompressed distance between checkpoints (rounded up to a whole
// chunk); 0 selects the 16 KiB default. At each checkpoint the
// encoder resets its basis dictionary to the frozen prefix of the
// shared Dict (or empty), so a Reader can start decoding at any
// checkpoint — that is what Reader.Seek/ReadAt and the indexed
// DecodeAll/NewReader worker fan-out build on. Indexing requires the
// serial writer (the index records one dictionary timeline); combining
// WithIndex with WithWorkers(n > 1) on a Writer is an error. On a
// Reader the option is accepted and ignored: readers follow the
// stream.
func WithIndex(checkpointBytes int) Option {
	return optionFunc(func(s *settings) error {
		if checkpointBytes < 0 {
			return fmt.Errorf("zipline: checkpoint interval %d out of range (0 = default %d)", checkpointBytes, defaultCheckpointBytes)
		}
		s.index = true
		s.indexEvery = checkpointBytes
		return nil
	})
}

// resolveOptions folds opts over the defaults (serial, no dict,
// paper-point Config) and cross-checks dict against an explicit
// configuration.
func resolveOptions(opts []Option) (settings, error) {
	s := settings{workers: 1}
	for _, o := range opts {
		if o == nil {
			continue
		}
		if err := o.applyOption(&s); err != nil {
			return s, err
		}
	}
	if s.dict != nil {
		if s.cfgSet && s.cfg.withDefaults() != s.dict.cfg {
			return s, fmt.Errorf("zipline: config %+v conflicts with dictionary trained at %+v",
				s.cfg.withDefaults(), s.dict.cfg)
		}
		s.cfg = s.dict.cfg
	}
	return s, nil
}
